"""Applying parsed directives to named arrays: the HPF "compile" step.

:class:`HpfNamespace` plays the role of the compiler's symbol table plus
the runtime's data-mapping machinery: declare arrays (with host values),
feed it the paper's directive text, and it creates / aligns / distributes
the corresponding :class:`~repro.hpf.array.DistributedArray` objects,
registers :class:`~repro.extensions.sparse_directive.SparseMatrixBinding`
trios, atom specs, and iteration-mapping directives.

Example (the paper's Figure-2 declarations)::

    ns = HpfNamespace(machine, env={"n": n, "nz": nz, "NP": machine.nprocs})
    ns.declare("p", n, values=p0)
    ...
    ns.apply('''
        !HPF$ PROCESSORS :: PROCS(NP)
        !HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
        !HPF$ DISTRIBUTE p(BLOCK)
    ''')
    p = ns.array("p")
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..extensions.atoms import IndivisableSpec
from ..extensions.on_processor import OnProcessor
from ..extensions.sparse_directive import SparseMatrixBinding
from .array import DistributedArray, DistributedDenseMatrix
from .directives import (
    AlignDirective,
    Directive,
    DistributeDirective,
    DistSpec,
    IndependentDirective,
    IndivisableDirective,
    IterationDirective,
    ProcessorsDirective,
    RedistributeDirective,
    SparseMatrixDirective,
    TemplateDirective,
    parse_directives,
)
from .distribution import Block, BlockK, Cyclic, CyclicK, Distribution
from .errors import DirectiveSemanticError
from .processors import ProcessorArrangement

__all__ = ["HpfNamespace"]


class HpfNamespace:
    """Named arrays plus the directives that map them.

    Parameters
    ----------
    machine:
        The simulated multicomputer.
    env:
        Integer parameters directive expressions may reference (``n``,
        ``nz``, ...).  ``NP`` / ``np`` default to the machine size.
    """

    def __init__(self, machine, env: Optional[Dict[str, int]] = None):
        self.machine = machine
        self.env: Dict[str, int] = dict(env or {})
        self.env.setdefault("NP", machine.nprocs)
        self.arrays: Dict[str, DistributedArray] = {}
        self.matrices: Dict[str, DistributedDenseMatrix] = {}
        self._matrix_values: Dict[str, np.ndarray] = {}
        self.processors: Dict[str, ProcessorArrangement] = {}
        self.templates: Dict[str, int] = {}
        self.sparse_bindings: Dict[str, SparseMatrixBinding] = {}
        self.atom_specs: Dict[str, IndivisableSpec] = {}
        self.iterations: Dict[str, IterationDirective] = {}
        self.dynamic: set = set()

    # ------------------------------------------------------------------ #
    # declarations
    # ------------------------------------------------------------------ #
    def declare(
        self,
        name: str,
        extent: int,
        values: Optional[np.ndarray] = None,
        dtype=np.float64,
    ) -> DistributedArray:
        """Declare a 1-D array (default BLOCK layout until directed)."""
        key = name.lower()
        if key in self.arrays:
            raise DirectiveSemanticError(f"array {name!r} already declared")
        if values is not None:
            values = np.asarray(values, dtype=dtype)
            if values.shape != (extent,):
                raise DirectiveSemanticError(
                    f"values shape {values.shape} != extent ({extent},)"
                )
            arr = DistributedArray.from_global(
                self.machine, values, Block(extent, self.machine.nprocs), name=name
            )
        else:
            arr = DistributedArray(self.machine, extent, name=name, dtype=dtype)
        self.arrays[key] = arr
        return arr

    def declare_matrix(self, name: str, values: np.ndarray) -> None:
        """Declare a dense 2-D array; ALIGN decides its partitioned axis."""
        key = name.lower()
        if key in self._matrix_values or key in self.matrices:
            raise DirectiveSemanticError(f"matrix {name!r} already declared")
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise DirectiveSemanticError("declare_matrix expects a 2-D array")
        self._matrix_values[key] = values

    def declare_sparse(self, name: str, matrix) -> SparseMatrixBinding:
        """Pre-register the matrix object a SPARSE_MATRIX directive will bind."""
        binding = SparseMatrixBinding(self.machine, matrix, name=name)
        self.sparse_bindings[name.lower()] = binding
        return binding

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def array(self, name: str) -> DistributedArray:
        try:
            return self.arrays[name.lower()]
        except KeyError:
            raise DirectiveSemanticError(f"unknown array {name!r}") from None

    def matrix(self, name: str) -> DistributedDenseMatrix:
        try:
            return self.matrices[name.lower()]
        except KeyError:
            raise DirectiveSemanticError(
                f"matrix {name!r} is not distributed yet (missing ALIGN?)"
            ) from None

    def sparse(self, name: str) -> SparseMatrixBinding:
        try:
            return self.sparse_bindings[name.lower()]
        except KeyError:
            raise DirectiveSemanticError(f"unknown sparse matrix {name!r}") from None

    def iteration_mapping(self, var: str, n: Optional[int] = None) -> OnProcessor:
        """Build the :class:`OnProcessor` of an ITERATION directive."""
        try:
            spec = self.iterations[var.lower()]
        except KeyError:
            raise DirectiveSemanticError(
                f"no ITERATION directive for variable {var!r}"
            ) from None
        expr = spec.on_processor
        env = self.env

        def fn(i):
            arr = np.asarray(i, dtype=np.int64)
            flat = np.atleast_1d(arr)
            out = np.empty(flat.shape, dtype=np.int64)
            for pos, val in enumerate(flat):
                local_env = dict(env)
                local_env[spec.var] = int(val)
                out[pos] = expr.eval(local_env)
            return out.reshape(arr.shape) if arr.shape else int(out[0])

        return OnProcessor(fn, self.machine.nprocs)

    # ------------------------------------------------------------------ #
    # directive application
    # ------------------------------------------------------------------ #
    def apply(self, text: str) -> "HpfNamespace":
        """Parse and apply a block of directive text."""
        for directive in parse_directives(text):
            self.apply_directive(directive)
        return self

    def apply_directive(self, d: Directive) -> None:
        if isinstance(d, ProcessorsDirective):
            self._apply_processors(d)
        elif isinstance(d, TemplateDirective):
            self.templates[d.name.lower()] = d.extent.eval(self.env)
        elif isinstance(d, AlignDirective):
            self._apply_align(d)
        elif isinstance(d, DistributeDirective):
            self._apply_distribute(d)
        elif isinstance(d, RedistributeDirective):
            self._apply_redistribute(d)
        elif isinstance(d, SparseMatrixDirective):
            self._apply_sparse_matrix(d)
        elif isinstance(d, IndivisableDirective):
            self._apply_indivisable(d)
        elif isinstance(d, IterationDirective):
            self.iterations[d.var.lower()] = d
        elif isinstance(d, IndependentDirective):
            pass  # an assertion on the following loop; checked at loop level
        else:  # pragma: no cover - defensive
            raise DirectiveSemanticError(f"unhandled directive {d!r}")

    # -- individual directives ------------------------------------------ #
    def _apply_processors(self, d: ProcessorsDirective) -> None:
        shape = tuple(e.eval(self.env) for e in d.shape)
        arrangement = ProcessorArrangement(d.name, shape)
        if arrangement.size != self.machine.nprocs:
            raise DirectiveSemanticError(
                f"PROCESSORS {d.name}{shape} has {arrangement.size} processors "
                f"but the machine has {self.machine.nprocs}"
            )
        self.processors[d.name.lower()] = arrangement

    def _build_distribution(self, spec: DistSpec, extent: int) -> Distribution:
        size = (
            spec.block_size.eval(self.env) if spec.block_size is not None else None
        )
        if spec.kind == "BLOCK":
            if size is None:
                return Block(extent, self.machine.nprocs)
            # the paper's pointer-array idiom needs the clamped variant
            clamp = size * self.machine.nprocs < extent
            return BlockK(extent, self.machine.nprocs, size, clamp=clamp)
        if spec.kind == "CYCLIC":
            if size is None:
                return Cyclic(extent, self.machine.nprocs)
            return CyclicK(extent, self.machine.nprocs, size)
        raise DirectiveSemanticError(f"unknown distribution kind {spec.kind}")

    def _apply_distribute(self, d: DistributeDirective) -> None:
        if d.dist.atom:
            raise DirectiveSemanticError(
                "ATOM distributions arrive via REDISTRIBUTE (runtime data needed)"
            )
        arr = self.array(d.array)
        dist = self._build_distribution(d.dist, arr.n)
        # DISTRIBUTE is the *initial* layout: no traffic charged
        arr.redistribute(dist, charge=False)
        if d.dynamic:
            self.dynamic.add(d.array.lower())

    def _apply_align(self, d: AlignDirective) -> None:
        if d.dynamic:
            for name in d.alignees:
                self.dynamic.add(name.lower())
        # atom alignment (ALIGN row(ATOM:i) WITH col(i)) is a declaration of
        # coupling; the coupling is realised by SparseMatrixBinding, so just
        # record it
        if any(isinstance(dim, tuple) and dim[0] == "ATOM" for dim in d.source_dims):
            return
        # 2-D dense alignment: A(:, *) or A(*, :) WITH p(:)
        if len(d.source_dims) == 2:
            if len(d.alignees) != 1:
                raise DirectiveSemanticError(
                    "2-D ALIGN supports a single matrix alignee"
                )
            name = d.alignees[0].lower()
            if name not in self._matrix_values:
                raise DirectiveSemanticError(
                    f"matrix {d.alignees[0]!r} not declared (declare_matrix)"
                )
            target = self.array(d.target)
            dims = d.source_dims
            if dims == [":", "*"]:
                axis = 0
            elif dims == ["*", ":"]:
                axis = 1
            else:
                raise DirectiveSemanticError(
                    f"unsupported 2-D alignment dims {dims}"
                )
            values = self._matrix_values[name]
            if values.shape[axis] != target.n:
                raise DirectiveSemanticError(
                    f"matrix axis extent {values.shape[axis]} != target extent "
                    f"{target.n}"
                )
            self.matrices[name] = DistributedDenseMatrix(
                self.machine,
                values,
                target.distribution,
                axis=axis,
                name=d.alignees[0],
            )
            return
        # 1-D identity alignment
        target = self.array(d.target)
        for name in d.alignees:
            self.array(name).align_with(target)

    def _apply_redistribute(self, d: RedistributeDirective) -> None:
        name = d.array.lower()
        if d.partitioner is not None:
            self.sparse(name).apply_partitioner(d.partitioner)
            return
        assert d.dist is not None
        if d.dist.atom:
            spec = self.atom_specs.get(name)
            binding = self._binding_of_element_array(name)
            if binding is not None:
                if d.dist.kind == "BLOCK":
                    binding.redistribute_atoms_uniform()
                else:
                    raise DirectiveSemanticError(
                        "ATOM: CYCLIC on a bound trio is not supported via "
                        "directives; use atom_cyclic() directly"
                    )
                return
            if spec is None:
                raise DirectiveSemanticError(
                    f"REDISTRIBUTE {d.array}(ATOM: ...) needs a prior "
                    "INDIVISABLE directive"
                )
            from ..extensions.atom_dist import atom_block, atom_cyclic

            arr = self.array(name)
            if d.dist.kind == "BLOCK":
                dist, _ = atom_block(spec, self.machine.nprocs)
            else:
                dist = atom_cyclic(spec, self.machine.nprocs)
            arr.redistribute(dist)
            return
        arr = self.array(name)
        arr.redistribute(self._build_distribution(d.dist, arr.n))

    def _binding_of_element_array(self, name: str) -> Optional[SparseMatrixBinding]:
        for binding in self.sparse_bindings.values():
            if name in (
                binding.idx.name.lower() if binding.idx.name else "",
                binding.val.name.lower() if binding.val.name else "",
            ):
                return binding
        return None

    def _apply_sparse_matrix(self, d: SparseMatrixDirective) -> None:
        key = d.name.lower()
        if key not in self.sparse_bindings:
            raise DirectiveSemanticError(
                f"SPARSE_MATRIX {d.name!r}: register the matrix object first "
                "with declare_sparse()"
            )
        binding = self.sparse_bindings[key]
        if binding.fmt != d.fmt:
            raise DirectiveSemanticError(
                f"SPARSE_MATRIX format {d.fmt} does not match the registered "
                f"{binding.fmt} matrix"
            )
        # adopt the directive's array names for the trio
        ptr_name, idx_name, val_name = d.arrays
        binding.ptr.name = ptr_name
        binding.idx.name = idx_name
        binding.val.name = val_name

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def report(self) -> str:
        """Human-readable data-mapping report (an HPF compiler's -Minfo).

        Lists every declared array with its distribution, alignment target
        and DAD balance, plus processor arrangements, sparse-matrix trio
        bindings, atom specs and iteration directives.
        """
        lines = [
            f"HPF data mapping report  (machine: {self.machine.nprocs} procs, "
            f"{self.machine.topology.name})"
        ]
        if self.processors:
            for name, arrangement in sorted(self.processors.items()):
                lines.append(f"  PROCESSORS {arrangement!r}")
        if self.templates:
            for name, extent in sorted(self.templates.items()):
                lines.append(f"  TEMPLATE {name}({extent})")
        lines.append("  arrays:")
        for name in sorted(self.arrays):
            arr = self.arrays[name]
            dad = arr.descriptor(dynamic=name in self.dynamic)
            target = (
                arr.group.target.name
                if arr.group is not None and arr.group.target is not arr
                else "-"
            )
            dyn = " DYNAMIC" if dad.dynamic else ""
            lines.append(
                f"    {name:<10} n={arr.n:<8} {arr.distribution!r:<40} "
                f"align={target:<8} imbalance={dad.imbalance():.3f}{dyn}"
            )
        for name in sorted(self.matrices):
            m = self.matrices[name]
            kind = "(BLOCK, *)" if m.axis == 0 else "(*, BLOCK)"
            lines.append(f"    {name:<10} {m.shape} dense {kind}")
        if self.sparse_bindings:
            lines.append("  sparse matrices:")
            for name, binding in sorted(self.sparse_bindings.items()):
                nonlocal_ = int(binding.nonlocal_elements().sum())
                lines.append(
                    f"    {binding.name}: {binding.fmt} n={binding.n} "
                    f"nnz={binding.nnz} non-local elements={nonlocal_}"
                )
        if self.atom_specs:
            lines.append("  indivisable entities:")
            for name, spec in sorted(self.atom_specs.items()):
                lines.append(
                    f"    {name}: {spec.natoms} atoms over "
                    f"{spec.nelements} elements"
                )
        if self.iterations:
            lines.append("  iteration mappings:")
            for var, spec in sorted(self.iterations.items()):
                merge = f" MERGE({spec.merge_op})" if spec.merge_op else ""
                lines.append(
                    f"    {var}: ON PROCESSOR({spec.on_processor}) "
                    f"privates={[p for p, _ in spec.privates]}{merge}"
                )
        return "\n".join(lines)

    def _apply_indivisable(self, d: IndivisableDirective) -> None:
        # the indirection array must hold integer offsets; prefer the bound
        # sparse trio's pointer if the names match, else a declared array
        name = d.array.lower()
        binding = self._binding_of_element_array(name)
        if binding is not None:
            self.atom_specs[name] = binding.indivisable_spec()
            return
        indirection = self.array(d.indirection)
        pointer = indirection.to_global().astype(np.int64)
        # the paper writes col(i:i+1) with 1-based Fortran pointers; accept
        # both conventions by normalising to a 0-based leading offset
        if pointer.size and pointer[0] == 1:
            pointer = pointer - 1
        self.atom_specs[name] = IndivisableSpec(
            pointer, array_name=d.array, pointer_name=d.indirection
        )
