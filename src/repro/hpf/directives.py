"""Parser for ``!HPF$`` and ``!EXT$`` directive lines.

This front-end accepts the directive text of the paper's figures *verbatim*
(including ``$HPF$`` spellings, Fortran ``&`` continuations and arithmetic
block sizes like ``BLOCK((n+NP-1)/NP)``) and produces small AST records the
:mod:`~repro.hpf.program` layer applies to named arrays.

Supported directives
--------------------
HPF-1 (Section 4):
  ``PROCESSORS``, ``TEMPLATE``, ``ALIGN``, ``DISTRIBUTE`` (with optional
  ``DYNAMIC,`` prefix), ``REDISTRIBUTE``, ``INDEPENDENT``.
Proposed extensions (Section 5):
  ``INDIVISABLE a(ATOM:i) :: ptr(i:i+1)``,
  ``REDISTRIBUTE a(ATOM: BLOCK)``,
  ``REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1``,
  ``SPARSE_MATRIX (CSR) :: smA(row, col, a)``,
  ``ITERATION j ON PROCESSOR(j/np), PRIVATE(q(n)) WITH MERGE(+), NEW(pj, k)``.

Arithmetic in block sizes is evaluated with Fortran integer-division
semantics against a caller-supplied environment (``n``, ``NP``, ...).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .errors import DirectiveSyntaxError

__all__ = [
    "Expr",
    "Num",
    "Var",
    "BinOp",
    "DimSpec",
    "DistSpec",
    "Directive",
    "ProcessorsDirective",
    "TemplateDirective",
    "AlignDirective",
    "DistributeDirective",
    "RedistributeDirective",
    "SparseMatrixDirective",
    "IndivisableDirective",
    "IterationDirective",
    "IndependentDirective",
    "tokenize",
    "parse_directive",
    "parse_directives",
]


# ---------------------------------------------------------------------- #
# expression AST (block sizes, iteration mappings)
# ---------------------------------------------------------------------- #
class Expr:
    """Arithmetic expression over integers and named parameters."""

    def eval(self, env: Dict[str, int]) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class Num(Expr):
    value: int

    def eval(self, env: Dict[str, int]) -> int:
        return self.value

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def eval(self, env: Dict[str, int]) -> int:
        for key, val in env.items():
            if key.lower() == self.name.lower():
                return int(val)
        raise DirectiveSyntaxError(
            f"unknown parameter {self.name!r} in directive expression "
            f"(environment has {sorted(env)})"
        )

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def eval(self, env: Dict[str, int]) -> int:
        a, b = self.left.eval(env), self.right.eval(env)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            if b == 0:
                raise DirectiveSyntaxError("division by zero in directive")
            return int(a / b) if (a < 0) != (b < 0) else a // b  # Fortran truncation
        raise DirectiveSyntaxError(f"unknown operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left}{self.op}{self.right})"


# ---------------------------------------------------------------------- #
# directive AST
# ---------------------------------------------------------------------- #
#: one dimension of an ALIGN source spec: ":" (aligned), "*" (collapsed /
#: replicated), ("ATOM", var) for atom alignment, or a dummy variable name.
DimSpec = Union[str, Tuple[str, str]]


@dataclass(frozen=True)
class DistSpec:
    """``BLOCK`` / ``CYCLIC`` with optional block-size expression and ATOM flag."""

    kind: str  # "BLOCK" or "CYCLIC"
    block_size: Optional[Expr] = None
    atom: bool = False

    def __str__(self) -> str:
        inner = f"({self.block_size})" if self.block_size is not None else ""
        prefix = "ATOM: " if self.atom else ""
        return f"{prefix}{self.kind}{inner}"


class Directive:
    """Base class of all parsed directives."""

    #: the raw source line (set by the parser)
    source: str = ""


@dataclass
class ProcessorsDirective(Directive):
    name: str
    shape: List[Expr]
    source: str = ""


@dataclass
class TemplateDirective(Directive):
    name: str
    extent: Expr
    source: str = ""


@dataclass
class AlignDirective(Directive):
    """``ALIGN <source>(dims) WITH <target>(dims) [:: alignees]``.

    ``alignees`` lists the arrays being aligned; for the inline form
    (``ALIGN a(:) WITH col(:)``) it is the single source array.
    """

    alignees: List[str]
    source_dims: List[DimSpec]
    target: str
    target_dims: List[DimSpec]
    dynamic: bool = False
    source: str = ""


@dataclass
class DistributeDirective(Directive):
    array: str
    dist: DistSpec
    dynamic: bool = False
    source: str = ""


@dataclass
class RedistributeDirective(Directive):
    array: str
    dist: Optional[DistSpec] = None
    partitioner: Optional[str] = None
    source: str = ""


@dataclass
class SparseMatrixDirective(Directive):
    fmt: str  # "CSR" or "CSC"
    name: str
    arrays: List[str]  # the (ptr, idx, val) trio in declaration order
    source: str = ""


@dataclass
class IndivisableDirective(Directive):
    """``INDIVISABLE data(ATOM:i) :: ptr(i:i+1)``."""

    array: str
    atom_var: str
    indirection: str
    lo: Expr
    hi: Expr
    source: str = ""


@dataclass
class IterationDirective(Directive):
    """``ITERATION j ON PROCESSOR(expr), PRIVATE(a(n)) WITH MERGE(+), NEW(...)``."""

    var: str
    on_processor: Optional[Expr] = None
    privates: List[Tuple[str, Expr]] = field(default_factory=list)
    merge_op: Optional[str] = None
    discard: bool = False
    news: List[str] = field(default_factory=list)
    source: str = ""


@dataclass
class IndependentDirective(Directive):
    source: str = ""


# ---------------------------------------------------------------------- #
# tokenizer
# ---------------------------------------------------------------------- #
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<dcolon>::)|(?P<num>\d+)|(?P<ident>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<sym>[(),:*+\-/=]))"
)

_PREFIX_RE = re.compile(r"^\s*[!$](HPF|EXT)\$\s*", re.IGNORECASE)


def tokenize(text: str) -> List[str]:
    """Split a directive body into tokens (``::`` is one token)."""
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            rest = text[pos:].strip()
            if not rest:
                break
            raise DirectiveSyntaxError(f"cannot tokenize {rest!r}")
        tokens.append(m.group(m.lastgroup))
        pos = m.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: Sequence[str], source: str):
        self.tokens = list(tokens)
        self.pos = 0
        self.source = source

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise DirectiveSyntaxError(f"unexpected end of directive: {self.source!r}")
        self.pos += 1
        return tok

    def expect(self, token: str) -> str:
        tok = self.next()
        if tok.lower() != token.lower():
            raise DirectiveSyntaxError(
                f"expected {token!r}, got {tok!r} in {self.source!r}"
            )
        return tok

    def accept(self, token: str) -> bool:
        if self.peek() is not None and self.peek().lower() == token.lower():
            self.pos += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def expect_ident(self) -> str:
        tok = self.next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", tok):
            raise DirectiveSyntaxError(
                f"expected identifier, got {tok!r} in {self.source!r}"
            )
        return tok


# ---------------------------------------------------------------------- #
# expression parser (precedence climbing)
# ---------------------------------------------------------------------- #
def _parse_expr(ts: _TokenStream) -> Expr:
    return _parse_additive(ts)


def _parse_additive(ts: _TokenStream) -> Expr:
    left = _parse_multiplicative(ts)
    while ts.peek() in ("+", "-"):
        op = ts.next()
        left = BinOp(op, left, _parse_multiplicative(ts))
    return left


def _parse_multiplicative(ts: _TokenStream) -> Expr:
    left = _parse_primary(ts)
    while ts.peek() in ("*", "/"):
        op = ts.next()
        left = BinOp(op, left, _parse_primary(ts))
    return left


def _parse_primary(ts: _TokenStream) -> Expr:
    tok = ts.next()
    if tok == "(":
        inner = _parse_expr(ts)
        ts.expect(")")
        return inner
    if tok == "-":
        return BinOp("-", Num(0), _parse_primary(ts))
    if tok.isdigit():
        return Num(int(tok))
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", tok):
        return Var(tok)
    raise DirectiveSyntaxError(f"unexpected token {tok!r} in expression")


# ---------------------------------------------------------------------- #
# directive parsers
# ---------------------------------------------------------------------- #
def _parse_dims(ts: _TokenStream) -> List[DimSpec]:
    """Parse an ALIGN dim list: ``(:)``, ``(:, *)``, ``(ATOM:i)``, ``(i)``."""
    ts.expect("(")
    dims: List[DimSpec] = []
    while True:
        tok = ts.peek()
        if tok == ":":
            ts.next()
            dims.append(":")
        elif tok == "*":
            ts.next()
            dims.append("*")
        elif tok is not None and tok.lower() == "atom":
            ts.next()
            ts.expect(":")
            dims.append(("ATOM", ts.expect_ident()))
        else:
            dims.append(ts.expect_ident())
        if ts.accept(","):
            continue
        ts.expect(")")
        return dims


def _parse_dist_spec(ts: _TokenStream) -> DistSpec:
    """Parse ``BLOCK``, ``BLOCK(expr)``, ``CYCLIC``, ``CYCLIC(expr)``,
    optionally preceded by ``ATOM:``."""
    atom = False
    tok = ts.expect_ident()
    if tok.lower() == "atom":
        ts.expect(":")
        atom = True
        tok = ts.expect_ident()
    kind = tok.upper()
    if kind not in ("BLOCK", "CYCLIC"):
        raise DirectiveSyntaxError(
            f"unknown distribution kind {tok!r} (expected BLOCK or CYCLIC)"
        )
    block_size = None
    if ts.accept("("):
        block_size = _parse_expr(ts)
        ts.expect(")")
    return DistSpec(kind, block_size, atom)


def _parse_processors(ts: _TokenStream, source: str) -> ProcessorsDirective:
    ts.accept("::")
    name = ts.expect_ident()
    ts.expect("(")
    shape = [_parse_expr(ts)]
    while ts.accept(","):
        shape.append(_parse_expr(ts))
    ts.expect(")")
    return ProcessorsDirective(name, shape, source=source)


def _parse_template(ts: _TokenStream, source: str) -> TemplateDirective:
    ts.accept("::")
    name = ts.expect_ident()
    ts.expect("(")
    extent = _parse_expr(ts)
    ts.expect(")")
    return TemplateDirective(name, extent, source=source)


def _parse_align(ts: _TokenStream, source: str, dynamic: bool) -> AlignDirective:
    # two forms:
    #   ALIGN (:) WITH p(:) :: q, r, x, b
    #   ALIGN a(:) WITH col(:)
    #   ALIGN A(:, *) WITH p(:)
    #   ALIGN row(ATOM:i) WITH col(i)
    inline_name: Optional[str] = None
    if ts.peek() == "(":
        source_dims = _parse_dims(ts)
    else:
        inline_name = ts.expect_ident()
        source_dims = _parse_dims(ts)
    ts.expect("WITH")
    target = ts.expect_ident()
    target_dims = _parse_dims(ts)
    alignees: List[str] = []
    if ts.accept("::"):
        alignees.append(ts.expect_ident())
        while ts.accept(","):
            alignees.append(ts.expect_ident())
        if inline_name is not None:
            raise DirectiveSyntaxError(
                f"ALIGN cannot name both an inline array and an alignee list: "
                f"{source!r}"
            )
    elif inline_name is not None:
        alignees.append(inline_name)
    else:
        raise DirectiveSyntaxError(f"ALIGN names no arrays: {source!r}")
    if not ts.at_end():
        raise DirectiveSyntaxError(f"trailing tokens in {source!r}")
    return AlignDirective(
        alignees, source_dims, target, target_dims, dynamic=dynamic, source=source
    )


def _parse_distribute(
    ts: _TokenStream, source: str, dynamic: bool
) -> DistributeDirective:
    array = ts.expect_ident()
    ts.expect("(")
    dist = _parse_dist_spec(ts)
    ts.expect(")")
    return DistributeDirective(array, dist, dynamic=dynamic, source=source)


def _parse_redistribute(ts: _TokenStream, source: str) -> RedistributeDirective:
    array = ts.expect_ident()
    if ts.accept("USING"):
        partitioner = ts.expect_ident()
        return RedistributeDirective(array, partitioner=partitioner, source=source)
    ts.expect("(")
    dist = _parse_dist_spec(ts)
    ts.expect(")")
    return RedistributeDirective(array, dist=dist, source=source)


def _parse_sparse_matrix(ts: _TokenStream, source: str) -> SparseMatrixDirective:
    ts.expect("(")
    fmt = ts.expect_ident().upper()
    if fmt not in ("CSR", "CSC"):
        raise DirectiveSyntaxError(f"unknown sparse format {fmt!r}")
    ts.expect(")")
    ts.expect("::")
    name = ts.expect_ident()
    ts.expect("(")
    arrays = [ts.expect_ident()]
    while ts.accept(","):
        arrays.append(ts.expect_ident())
    ts.expect(")")
    if len(arrays) != 3:
        raise DirectiveSyntaxError(
            f"SPARSE_MATRIX needs exactly three arrays, got {arrays}"
        )
    return SparseMatrixDirective(fmt, name, arrays, source=source)


def _parse_indivisable(ts: _TokenStream, source: str) -> IndivisableDirective:
    array = ts.expect_ident()
    ts.expect("(")
    ts.expect("ATOM")
    ts.expect(":")
    atom_var = ts.expect_ident()
    ts.expect(")")
    ts.expect("::")
    indirection = ts.expect_ident()
    ts.expect("(")
    lo = _parse_expr(ts)
    ts.expect(":")
    hi = _parse_expr(ts)
    ts.expect(")")
    return IndivisableDirective(array, atom_var, indirection, lo, hi, source=source)


def _parse_iteration(ts: _TokenStream, source: str) -> IterationDirective:
    var = ts.expect_ident()
    directive = IterationDirective(var, source=source)
    ts.expect("ON")
    ts.expect("PROCESSOR")
    ts.expect("(")
    directive.on_processor = _parse_expr(ts)
    ts.expect(")")
    while ts.accept(","):
        if ts.at_end():
            break
        key = ts.expect_ident().upper()
        if key == "PRIVATE":
            ts.expect("(")
            pname = ts.expect_ident()
            extent: Expr = Num(0)
            if ts.accept("("):
                extent = _parse_expr(ts)
                ts.expect(")")
            ts.expect(")")
            directive.privates.append((pname, extent))
            if ts.accept("WITH"):
                mode = ts.expect_ident().upper()
                if mode == "MERGE":
                    ts.expect("(")
                    directive.merge_op = ts.next()
                    ts.expect(")")
                elif mode == "DISCARD":
                    directive.discard = True
                else:
                    raise DirectiveSyntaxError(
                        f"unknown PRIVATE mode {mode!r} (MERGE or DISCARD)"
                    )
        elif key == "NEW":
            ts.expect("(")
            directive.news.append(ts.expect_ident())
            while ts.accept(","):
                directive.news.append(ts.expect_ident())
            ts.expect(")")
        else:
            raise DirectiveSyntaxError(f"unknown ITERATION clause {key!r}")
    return directive


_DISPATCH = {
    "PROCESSORS": lambda ts, src: _parse_processors(ts, src),
    "TEMPLATE": lambda ts, src: _parse_template(ts, src),
    "ALIGN": lambda ts, src: _parse_align(ts, src, dynamic=False),
    "DISTRIBUTE": lambda ts, src: _parse_distribute(ts, src, dynamic=False),
    "REDISTRIBUTE": lambda ts, src: _parse_redistribute(ts, src),
    "SPARSE_MATRIX": lambda ts, src: _parse_sparse_matrix(ts, src),
    "INDIVISABLE": lambda ts, src: _parse_indivisable(ts, src),
    "ITERATION": lambda ts, src: _parse_iteration(ts, src),
    "INDEPENDENT": lambda ts, src: IndependentDirective(source=src),
}


def parse_directive(line: str) -> Directive:
    """Parse one (already continuation-joined) directive line."""
    m = _PREFIX_RE.match(line)
    if not m:
        raise DirectiveSyntaxError(
            f"not a directive line (missing !HPF$ / !EXT$ prefix): {line!r}"
        )
    body = line[m.end():].strip()
    ts = _TokenStream(tokenize(body), line.strip())
    keyword = ts.expect_ident().upper()
    dynamic = False
    if keyword == "DYNAMIC":
        dynamic = True
        ts.accept(",")
        keyword = ts.expect_ident().upper()
        if keyword not in ("DISTRIBUTE", "ALIGN"):
            raise DirectiveSyntaxError(
                f"DYNAMIC must prefix DISTRIBUTE or ALIGN, got {keyword}"
            )
    if keyword == "DISTRIBUTE":
        out: Directive = _parse_distribute(ts, line.strip(), dynamic)
    elif keyword == "ALIGN":
        out = _parse_align(ts, line.strip(), dynamic)
    elif keyword in _DISPATCH:
        out = _DISPATCH[keyword](ts, line.strip())
    else:
        raise DirectiveSyntaxError(f"unknown directive keyword {keyword!r}")
    if not ts.at_end() and not isinstance(out, IterationDirective):
        raise DirectiveSyntaxError(
            f"trailing tokens {ts.tokens[ts.pos:]} in {line.strip()!r}"
        )
    return out


def parse_directives(text: str) -> List[Directive]:
    """Parse a block of directive lines (handles ``&`` continuations).

    Non-directive lines (Fortran statements, blanks, plain comments) are
    skipped, so the paper's figures can be fed in whole.
    """
    # join continuations: a directive line ending in '&' absorbs the next
    # directive line's body
    logical_lines: List[str] = []
    pending: Optional[str] = None
    for raw in text.splitlines():
        stripped = raw.strip()
        if pending is not None:
            m = _PREFIX_RE.match(stripped)
            if not m:
                raise DirectiveSyntaxError(
                    f"continuation line is not a directive: {stripped!r}"
                )
            fragment = stripped[m.end():].strip()
            if fragment.endswith("&"):
                pending += " " + fragment[:-1].strip()
            else:
                logical_lines.append(pending + " " + fragment)
                pending = None
            continue
        if not _PREFIX_RE.match(stripped):
            continue  # not a directive
        if stripped.endswith("&"):
            pending = stripped[:-1].strip()
        else:
            logical_lines.append(stripped)
    if pending is not None:
        raise DirectiveSyntaxError(f"unterminated continuation: {pending!r}")
    return [parse_directive(line) for line in logical_lines]
