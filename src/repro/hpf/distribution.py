"""HPF data distributions: BLOCK, BLOCK(k), CYCLIC, CYCLIC(k), replicated.

A distribution maps the index space ``0..n-1`` of a one-dimensional array
(or of one dimension of a template) onto ``P`` abstract processors.  The
paper's directives use:

* ``DISTRIBUTE p(BLOCK)`` -- even contiguous blocks;
* ``DISTRIBUTE row(BLOCK((n+NP-1)/NP))`` -- explicit block size "to ensure
  that the (n+1)'th element of row is placed in the last processor";
* ``DISTRIBUTE row(CYCLIC((n+NP-1)/np))`` -- block-cyclic;
* alignment with ``*`` (replication).

:class:`IrregularBlock` is the *extension* layout produced by the paper's
``ATOM: BLOCK`` redistribution and the load-balancing partitioners: still
contiguous per rank, but with data-dependent cut points ("a small array in
the size of the number of processors keeps the cut-off points").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .errors import DistributionError

__all__ = [
    "Distribution",
    "Block",
    "BlockK",
    "Cyclic",
    "CyclicK",
    "Replicated",
    "IrregularBlock",
    "Grid3DBlock",
    "choose_grid3d",
    "block_boundaries",
    "RedistributionMessage",
    "RedistributionPlan",
    "redistribute_vector",
    "redistribute_csr",
    "vector_blocks",
]

IndexLike = Union[int, np.ndarray]


def block_boundaries(n: int, nprocs: int) -> np.ndarray:
    """Cut points of the default HPF BLOCK distribution.

    HPF BLOCK is BLOCK(ceil(n/P)): the first ranks get full blocks of
    ``ceil(n/P)`` and trailing ranks may be empty.
    """
    k = -(-n // nprocs) if n else 0
    return np.minimum(np.arange(nprocs + 1, dtype=np.int64) * k, n)


class Distribution(ABC):
    """Mapping of a 1-D global index space onto processors."""

    #: replicated distributions own every element on every rank
    is_replicated: bool = False
    #: contiguous distributions expose :meth:`local_range`
    is_contiguous: bool = False

    def __init__(self, n: int, nprocs: int):
        if n < 0:
            raise DistributionError(f"extent must be non-negative, got {n}")
        if nprocs < 1:
            raise DistributionError(f"nprocs must be >= 1, got {nprocs}")
        self.n = int(n)
        self.nprocs = int(nprocs)

    # ------------------------------------------------------------------ #
    @abstractmethod
    def owners(self, idx: np.ndarray) -> np.ndarray:
        """Owning rank of each global index (vectorised)."""

    @abstractmethod
    def local_indices(self, rank: int) -> np.ndarray:
        """Sorted global indices owned by ``rank``."""

    @abstractmethod
    def global_to_local(self, idx: np.ndarray) -> np.ndarray:
        """Position of each global index within its owner's local array."""

    def owner(self, i: int) -> int:
        """Owning rank of global index ``i``."""
        self._check_index(i)
        return int(self.owners(np.asarray([i]))[0])

    # ------------------------------------------------------------------ #
    # Memoized full-extent maps.  A Distribution is immutable after
    # construction (every subclass stores only scalars / copied arrays),
    # so these caches are write-once: computed on first use, returned as
    # read-only views forever after.  They exist because the index
    # translation sits on the hot path -- every REDISTRIBUTE plan, vector
    # re-slice and alignment check used to rebuild the same O(n) arrays
    # from scratch per call.
    # ------------------------------------------------------------------ #
    def owner_map(self) -> np.ndarray:
        """Cached ``owners(arange(n))`` (read-only array)."""
        cached = getattr(self, "_owner_map", None)
        if cached is None:
            cached = np.ascontiguousarray(
                self.owners(np.arange(self.n, dtype=np.int64))
            )
            cached.setflags(write=False)
            self._owner_map = cached
        return cached

    def global_to_local_map(self) -> np.ndarray:
        """Cached ``global_to_local(arange(n))`` (read-only array)."""
        cached = getattr(self, "_g2l_map", None)
        if cached is None:
            cached = np.ascontiguousarray(
                self.global_to_local(np.arange(self.n, dtype=np.int64))
            )
            cached.setflags(write=False)
            self._g2l_map = cached
        return cached

    def local_indices_cached(self, rank: int) -> np.ndarray:
        """Cached :meth:`local_indices` per rank (read-only array)."""
        cache = getattr(self, "_local_indices_cache", None)
        if cache is None:
            cache = {}
            self._local_indices_cache = cache
        cached = cache.get(rank)
        if cached is None:
            cached = np.ascontiguousarray(self.local_indices(rank))
            cached.setflags(write=False)
            cache[rank] = cached
        return cached

    def local_count(self, rank: int) -> int:
        """Number of elements ``rank`` owns."""
        return int(self.local_indices(rank).size)

    def counts(self) -> np.ndarray:
        """Per-rank element counts."""
        return np.array(
            [self.local_count(r) for r in range(self.nprocs)], dtype=np.int64
        )

    def max_local_count(self) -> int:
        return int(self.counts().max()) if self.nprocs else 0

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise IndexError(f"global index {i} out of range [0, {self.n})")

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise DistributionError(f"rank {rank} out of range")

    # ------------------------------------------------------------------ #
    def same_mapping(self, other: "Distribution") -> bool:
        """True when both distributions place every index identically."""
        if self.n != other.n or self.nprocs != other.nprocs:
            return False
        if self == other:
            return True
        if self.is_replicated or other.is_replicated:
            return self.is_replicated and other.is_replicated
        return bool(
            np.array_equal(self.owner_map(), other.owner_map())
            and np.array_equal(
                self.global_to_local_map(), other.global_to_local_map()
            )
        )

    #: lazily-populated memo attributes, excluded from equality: a cached
    #: and an uncached instance of the same layout must still compare ==
    _CACHE_ATTRS = ("_owner_map", "_g2l_map", "_local_indices_cache")

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return False
        mine = {k: v for k, v in self.__dict__.items()
                if k not in self._CACHE_ATTRS}
        theirs = {k: v for k, v in other.__dict__.items()  # type: ignore[union-attr]
                  if k not in self._CACHE_ATTRS}
        return mine == theirs

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.n, self.nprocs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, nprocs={self.nprocs})"


class BlockK(Distribution):
    """``BLOCK(k)``: contiguous blocks of exactly ``k`` elements per rank.

    HPF requires ``k * nprocs >= n``; the paper uses
    ``BLOCK((n+NP-1)/NP)`` to force the ``n+1``-th element of ``row`` onto
    the last processor.
    """

    is_contiguous = True

    def __init__(self, n: int, nprocs: int, k: int, clamp: bool = False):
        """``clamp=True`` sends overflow elements to the last processor.

        Strict HPF requires ``k * nprocs >= n``; the paper's
        ``DISTRIBUTE row(BLOCK((n+NP-1)/NP))`` on the ``n+1``-element
        pointer array relies on the trailing element being "placed in the
        last processor", which the clamped variant provides.
        """
        super().__init__(n, nprocs)
        if k < 1:
            raise DistributionError(f"block size must be >= 1, got {k}")
        if not clamp and k * nprocs < n:
            raise DistributionError(
                f"BLOCK({k}) on {nprocs} processors covers only "
                f"{k * nprocs} < {n} elements"
            )
        self.k = int(k)
        self.clamp = bool(clamp)

    def owners(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        owners = idx // self.k
        if self.clamp:
            owners = np.minimum(owners, self.nprocs - 1)
        return owners

    def local_indices(self, rank: int) -> np.ndarray:
        lo, hi = self.local_range(rank)
        return np.arange(lo, hi, dtype=np.int64)

    def local_range(self, rank: int) -> Tuple[int, int]:
        """Half-open global range ``[lo, hi)`` owned by ``rank``."""
        self._check_rank(rank)
        lo = min(rank * self.k, self.n)
        hi = min((rank + 1) * self.k, self.n)
        if self.clamp and rank == self.nprocs - 1:
            hi = self.n
        return lo, hi

    def global_to_local(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        if self.clamp:
            lo = np.minimum(self.owners(idx), self.nprocs - 1) * self.k
            return idx - lo
        return idx % self.k

    def boundaries(self) -> np.ndarray:
        """Cut points array of length ``nprocs + 1``."""
        return np.minimum(
            np.arange(self.nprocs + 1, dtype=np.int64) * self.k, self.n
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockK(n={self.n}, nprocs={self.nprocs}, k={self.k})"


class Block(BlockK):
    """Default HPF ``BLOCK``: block size ``ceil(n / nprocs)``."""

    def __init__(self, n: int, nprocs: int):
        k = max(1, -(-n // nprocs)) if n else 1
        super().__init__(n, nprocs, k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Block(n={self.n}, nprocs={self.nprocs})"


class CyclicK(Distribution):
    """``CYCLIC(k)``: blocks of ``k`` dealt round-robin to processors."""

    def __init__(self, n: int, nprocs: int, k: int):
        super().__init__(n, nprocs)
        if k < 1:
            raise DistributionError(f"cyclic block size must be >= 1, got {k}")
        self.k = int(k)

    def owners(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        return (idx // self.k) % self.nprocs

    def local_indices(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        idx = np.arange(self.n, dtype=np.int64)
        return idx[(idx // self.k) % self.nprocs == rank]

    def global_to_local(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        block = idx // self.k
        return (block // self.nprocs) * self.k + idx % self.k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CyclicK(n={self.n}, nprocs={self.nprocs}, k={self.k})"


class Cyclic(CyclicK):
    """``CYCLIC``: round-robin single elements (``CYCLIC(1)``)."""

    def __init__(self, n: int, nprocs: int):
        super().__init__(n, nprocs, 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cyclic(n={self.n}, nprocs={self.nprocs})"


class Replicated(Distribution):
    """Every rank holds the full array (HPF ``*`` / unaligned dimension)."""

    is_replicated = True

    def owners(self, idx: np.ndarray) -> np.ndarray:
        raise DistributionError("replicated arrays have no unique owner")

    def local_indices(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        return np.arange(self.n, dtype=np.int64)

    def global_to_local(self, idx: np.ndarray) -> np.ndarray:
        return np.asarray(idx, dtype=np.int64)

    def local_count(self, rank: int) -> int:
        self._check_rank(rank)
        return self.n


class IrregularBlock(Distribution):
    """Contiguous blocks with arbitrary cut points.

    This is the layout the paper's ``ATOM: BLOCK`` redistribution and the
    ``CG_BALANCED_PARTITIONER_1`` produce: rank ``r`` owns
    ``boundaries[r]:boundaries[r+1]``.  Only the ``nprocs + 1`` cut points
    are stored ("the compiler avoids generating a full distribution map of
    the size of the target arrays").
    """

    is_contiguous = True

    def __init__(self, boundaries, nprocs: int = None):
        boundaries = np.asarray(boundaries, dtype=np.int64)
        if boundaries.ndim != 1 or boundaries.size < 2:
            raise DistributionError("boundaries must be 1-D with >= 2 entries")
        if nprocs is None:
            nprocs = boundaries.size - 1
        if boundaries.size != nprocs + 1:
            raise DistributionError(
                f"need {nprocs + 1} cut points for {nprocs} ranks, "
                f"got {boundaries.size}"
            )
        if boundaries[0] != 0:
            raise DistributionError("boundaries must start at 0")
        if (np.diff(boundaries) < 0).any():
            raise DistributionError("boundaries must be non-decreasing")
        super().__init__(int(boundaries[-1]), nprocs)
        self._boundaries = boundaries.copy()

    def boundaries(self) -> np.ndarray:
        return self._boundaries.copy()

    def owners(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        return np.searchsorted(self._boundaries, idx, side="right") - 1

    def local_range(self, rank: int) -> Tuple[int, int]:
        self._check_rank(rank)
        return int(self._boundaries[rank]), int(self._boundaries[rank + 1])

    def local_indices(self, rank: int) -> np.ndarray:
        lo, hi = self.local_range(rank)
        return np.arange(lo, hi, dtype=np.int64)

    def global_to_local(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        return idx - self._boundaries[self.owners(idx)]

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.n == other.n  # type: ignore[union-attr]
            and self.nprocs == other.nprocs  # type: ignore[union-attr]
            and np.array_equal(self._boundaries, other._boundaries)  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:
        return hash(("IrregularBlock", self.n, self.nprocs, self._boundaries.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IrregularBlock(nprocs={self.nprocs}, "
            f"boundaries={self._boundaries.tolist()})"
        )


def choose_grid3d(nprocs: int) -> Tuple[int, int, int]:
    """Near-cubic process-grid factorisation ``(px, py, pz)`` of ``nprocs``.

    Prime factors are dealt largest-first onto the currently least-divided
    axis, preferring to cut the slow axes (``z``, then ``y``) so each rank's
    subcube keeps the longest contiguous ``x``-runs: 2 -> (1, 1, 2),
    4 -> (1, 2, 2), 8 -> (2, 2, 2), 12 -> (2, 2, 3).
    """
    if nprocs < 1:
        raise DistributionError(f"nprocs must be >= 1, got {nprocs}")
    factors = []
    m = nprocs
    d = 2
    while d * d <= m:
        while m % d == 0:
            factors.append(d)
            m //= d
        d += 1
    if m > 1:
        factors.append(m)
    dims = [1, 1, 1]  # (px, py, pz)
    for f in sorted(factors, reverse=True):
        # least-divided axis wins; ties go to the slowest axis (z)
        axis = max(range(3), key=lambda a: (-dims[a], a))
        dims[axis] *= f
    return dims[0], dims[1], dims[2]


class Grid3DBlock(Distribution):
    """(BLOCK, BLOCK, BLOCK) over a 3-D grid: each rank owns a subcube.

    The index space is the row-major flattening of an ``nx x ny x nz`` grid
    with ``x`` fastest -- point ``(ix, iy, iz)`` has global id
    ``(iz*ny + iy)*nx + ix``, matching
    :func:`repro.sparse.generators.stencil27`.  Processors form a
    ``px x py x pz`` grid (``rank = (rz*py + ry)*px + rx``) and each owns
    the tensor product of one BLOCK interval per axis.  Ownership is *not*
    globally contiguous, which is the point: a 27-point stencil row only
    couples to the 26 surrounding subcubes, so rank programs exchange
    faces, edges and corners instead of all-gathering the operand.
    """

    is_contiguous = False

    def __init__(
        self,
        shape: Tuple[int, int, int],
        nprocs: int,
        grid: Optional[Tuple[int, int, int]] = None,
    ):
        nx, ny, nz = (int(s) for s in shape)
        if nx < 1 or ny < 1 or nz < 1:
            raise DistributionError(f"grid shape must be positive, got {shape}")
        super().__init__(nx * ny * nz, nprocs)
        if grid is None:
            grid = choose_grid3d(nprocs)
        px, py, pz = (int(g) for g in grid)
        if px * py * pz != nprocs:
            raise DistributionError(
                f"process grid {px}x{py}x{pz} does not cover {nprocs} ranks"
            )
        self.shape = (nx, ny, nz)
        self.grid = (px, py, pz)
        self._cuts = (
            block_boundaries(nx, px),
            block_boundaries(ny, py),
            block_boundaries(nz, pz),
        )

    # ------------------------------------------------------------------ #
    def coords(self, rank: int) -> Tuple[int, int, int]:
        """Process-grid coordinates ``(rx, ry, rz)`` of ``rank``."""
        self._check_rank(rank)
        px, py, _ = self.grid
        rz, rem = divmod(rank, px * py)
        ry, rx = divmod(rem, px)
        return rx, ry, rz

    def rank_of(self, rx: int, ry: int, rz: int) -> int:
        px, py, pz = self.grid
        if not (0 <= rx < px and 0 <= ry < py and 0 <= rz < pz):
            raise DistributionError(f"coords ({rx},{ry},{rz}) outside {self.grid}")
        return (rz * py + ry) * px + rx

    def local_box(self, rank: int) -> Tuple[Tuple[int, int], ...]:
        """Half-open ``((xlo, xhi), (ylo, yhi), (zlo, zhi))`` owned by ``rank``."""
        rx, ry, rz = self.coords(rank)
        cx, cy, cz = self._cuts
        return (
            (int(cx[rx]), int(cx[rx + 1])),
            (int(cy[ry]), int(cy[ry + 1])),
            (int(cz[rz]), int(cz[rz + 1])),
        )

    # ------------------------------------------------------------------ #
    def owners(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        nx, ny, _ = self.shape
        iz, rem = np.divmod(idx, nx * ny)
        iy, ix = np.divmod(rem, nx)
        cx, cy, cz = self._cuts
        rx = np.searchsorted(cx, ix, side="right") - 1
        ry = np.searchsorted(cy, iy, side="right") - 1
        rz = np.searchsorted(cz, iz, side="right") - 1
        px, py, _ = self.grid
        return (rz * py + ry) * px + rx

    def local_indices(self, rank: int) -> np.ndarray:
        (xlo, xhi), (ylo, yhi), (zlo, zhi) = self.local_box(rank)
        nx, ny, nz = self.shape
        ids = np.arange(self.n, dtype=np.int64).reshape(nz, ny, nx)
        return ids[zlo:zhi, ylo:yhi, xlo:xhi].ravel()

    def global_to_local(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        nx, ny, _ = self.shape
        iz, rem = np.divmod(idx, nx * ny)
        iy, ix = np.divmod(rem, nx)
        cx, cy, cz = self._cuts
        rx = np.searchsorted(cx, ix, side="right") - 1
        ry = np.searchsorted(cy, iy, side="right") - 1
        rz = np.searchsorted(cz, iz, side="right") - 1
        lx = ix - cx[rx]
        ly = iy - cy[ry]
        lz = iz - cz[rz]
        wx = cx[rx + 1] - cx[rx]
        wy = cy[ry + 1] - cy[ry]
        return (lz * wy + ly) * wx + lx

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.shape == other.shape  # type: ignore[union-attr]
            and self.grid == other.grid  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:
        return hash(("Grid3DBlock", self.shape, self.grid))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nx, ny, nz = self.shape
        px, py, pz = self.grid
        return f"Grid3DBlock({nx}x{ny}x{nz} over {px}x{py}x{pz})"


# ---------------------------------------------------------------------- #
# online REDISTRIBUTE: old-layout -> new-layout remapping
# ---------------------------------------------------------------------- #
#: sentinel source for data whose old owner is dead; it is refetched from
#: the stable checkpoint store instead of a live peer
SOURCE_LOST = -1


@dataclass(frozen=True)
class RedistributionMessage:
    """One point-to-point transfer in a redistribution schedule.

    ``src`` and ``dst`` are ranks *in the new (post-shrink) numbering*;
    ``src == SOURCE_LOST`` marks data whose old owner is gone and must be
    refetched from the stable checkpoint store.  ``count`` is the number of
    global indices carried and ``words`` the modelled payload size (per-index
    weights applied).
    """

    src: int
    dst: int
    count: int
    words: float


class RedistributionPlan:
    """Message schedule realising ``REDISTRIBUTE`` from ``old`` to ``new``.

    This is the runtime the paper's HPF-2 extension sketch assumes: given
    the old and new distributions of the same ``0..n-1`` index space, the
    compiler/runtime derives who sends which slice to whom.  The plan is
    layout-agnostic -- any :class:`Distribution` pair works, including
    CYCLIC onto the ATOM:BLOCK :class:`IrregularBlock` a load-balancing
    partitioner produced.

    Parameters
    ----------
    old, new:
        Source and target distributions over the same global extent.
    survivors:
        Old rank ids still alive, listed in new-rank order (``survivors[i]``
        is the old identity of new rank ``i``).  Defaults to the identity
        mapping, which requires ``old.nprocs == new.nprocs``.  Indices whose
        old owner is not a survivor are scheduled from :data:`SOURCE_LOST`
        (the stable checkpoint store).
    weights:
        Optional per-global-index word counts (e.g. ``2*nnz_row + 3`` for a
        CSR row plus its share of the x/r/p vectors).  Default: one word per
        index.
    """

    def __init__(
        self,
        old: Distribution,
        new: Distribution,
        survivors: Optional[Sequence[int]] = None,
        weights: Optional[np.ndarray] = None,
    ):
        if old.n != new.n:
            raise DistributionError(
                f"cannot redistribute extent {old.n} onto extent {new.n}"
            )
        if old.is_replicated or new.is_replicated:
            raise DistributionError("redistribution of replicated arrays is a no-op")
        if survivors is None:
            if old.nprocs != new.nprocs:
                raise DistributionError(
                    "survivors must be given when the rank count changes "
                    f"({old.nprocs} -> {new.nprocs})"
                )
            survivors = list(range(old.nprocs))
        survivors = [int(s) for s in survivors]
        if len(survivors) != new.nprocs:
            raise DistributionError(
                f"{new.nprocs} new ranks need {new.nprocs} survivors, "
                f"got {len(survivors)}"
            )
        if len(set(survivors)) != len(survivors):
            raise DistributionError("survivors must be distinct")
        for s in survivors:
            if not 0 <= s < old.nprocs:
                raise DistributionError(f"survivor {s} not an old rank")
        self.old = old
        self.new = new
        self.survivors = survivors
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (old.n,):
                raise DistributionError(
                    f"weights must have shape ({old.n},), got {weights.shape}"
                )
        self.weights = weights

        new_of_old = {o: i for i, o in enumerate(survivors)}
        messages: List[RedistributionMessage] = []
        in_place_words = 0.0
        lost_words = 0.0
        old_owner_map = old.owner_map()
        for dst in range(new.nprocs):
            idx = new.local_indices_cached(dst)
            if idx.size == 0:
                continue
            owners = old_owner_map[idx]
            w = weights[idx] if weights is not None else np.ones(idx.size)
            for o in np.unique(owners):
                mask = owners == o
                src = new_of_old.get(int(o), SOURCE_LOST)
                words = float(w[mask].sum())
                if src == dst:
                    in_place_words += words
                    continue
                if src == SOURCE_LOST:
                    lost_words += words
                messages.append(
                    RedistributionMessage(
                        src=src, dst=dst, count=int(mask.sum()), words=words
                    )
                )
        self.messages = messages
        self.in_place_words = in_place_words
        self.lost_words = lost_words

    # ------------------------------------------------------------------ #
    @property
    def total_messages(self) -> int:
        return len(self.messages)

    @property
    def total_words(self) -> float:
        return float(sum(m.words for m in self.messages))

    def modelled_time(self, cost) -> float:
        """Redistribution time under the machine cost model.

        Each endpoint serialises its own sends and receives (one NIC per
        node); transfers between different endpoints overlap.  The modelled
        time is ``max over endpoints of sum of message_time(words)`` --
        the standard single-port exchange bound.  Fetches from the stable
        store (``src == SOURCE_LOST``) are charged to the receiver only.
        """
        busy: dict = {}
        for m in self.messages:
            t = cost.message_time(m.words, 1)
            if m.src != SOURCE_LOST:
                busy[m.src] = busy.get(m.src, 0.0) + t
            busy[m.dst] = busy.get(m.dst, 0.0) + t
        return max(busy.values()) if busy else 0.0

    def as_dict(self) -> dict:
        return {
            "old": repr(self.old),
            "new": repr(self.new),
            "survivors": list(self.survivors),
            "messages": self.total_messages,
            "words": self.total_words,
            "in_place_words": self.in_place_words,
            "lost_words": self.lost_words,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RedistributionPlan({self.old!r} -> {self.new!r}, "
            f"messages={self.total_messages}, words={self.total_words:g})"
        )


def vector_blocks(x: np.ndarray, dist: Distribution) -> List[np.ndarray]:
    """Split a global vector into per-rank local blocks under ``dist``."""
    x = np.asarray(x)
    if x.shape[0] != dist.n:
        raise DistributionError(f"vector length {x.shape[0]} != extent {dist.n}")
    return [x[dist.local_indices_cached(r)] for r in range(dist.nprocs)]


def redistribute_vector(
    blocks: Sequence[np.ndarray],
    old: Distribution,
    new: Distribution,
    survivors: Optional[Sequence[int]] = None,
) -> List[np.ndarray]:
    """Remap per-rank local blocks of a distributed vector onto ``new``.

    ``blocks[r]`` holds old rank ``r``'s local elements in local order.
    ``survivors`` is accepted for signature symmetry with
    :class:`RedistributionPlan` but does not change the result: the global
    contents are reassembled from *all* old blocks (a dead rank's block
    comes from its checkpoint snapshot) and re-sliced, so redistribution
    preserves the global vector exactly for any layout pair.
    """
    if len(blocks) != old.nprocs:
        raise DistributionError(
            f"need {old.nprocs} local blocks, got {len(blocks)}"
        )
    first = np.asarray(blocks[0]) if blocks else np.zeros(0)
    out = np.zeros(old.n, dtype=first.dtype if first.size else np.float64)
    for r in range(old.nprocs):
        idx = old.local_indices_cached(r)
        blk = np.asarray(blocks[r])
        if blk.shape[0] != idx.size:
            raise DistributionError(
                f"old rank {r} block has {blk.shape[0]} elements, owns {idx.size}"
            )
        out[idx] = blk
    return [out[new.local_indices_cached(d)] for d in range(new.nprocs)]


def redistribute_csr(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    old: Distribution,
    new: Distribution,
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Row-wise remap of a CSR matrix from layout ``old`` onto ``new``.

    Operates on the raw CSR trio so the HPF layer stays free of sparse-
    format dependencies.  Returns, per new rank, ``(local_indptr,
    local_indices, local_data, row_ids)`` where ``row_ids`` are the global
    rows owned (in local order) -- the pieces a rank program needs to run
    its share of the matvec after a shrink.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    if indptr.shape[0] != old.n + 1:
        raise DistributionError(
            f"indptr length {indptr.shape[0]} != rows+1 = {old.n + 1}"
        )
    out = []
    for d in range(new.nprocs):
        rows = new.local_indices_cached(d)
        counts = indptr[rows + 1] - indptr[rows]
        local_indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=local_indptr[1:])
        local_indices = np.concatenate(
            [indices[indptr[r]:indptr[r + 1]] for r in rows]
        ) if rows.size else np.zeros(0, dtype=np.int64)
        local_data = np.concatenate(
            [data[indptr[r]:indptr[r + 1]] for r in rows]
        ) if rows.size else np.zeros(0, dtype=np.float64)
        out.append((local_indptr, local_indices, local_data, rows))
    return out
