"""INDEPENDENT loops with runtime Bernstein-condition checking.

HPF's ``INDEPENDENT`` asserts that loop iterations do not interfere.  The
paper rejects it for the CSC scatter loop because "the write-after-write
dependency violates Bernstein's conditions [3]".  This module *checks* the
assertion: iteration bodies run against recording proxies, the read/write
sets are intersected pairwise (Bernstein 1966: parallel composition is
valid iff W_i∩W_j, W_i∩R_j and R_i∩W_j are all empty), and a violation
raises :class:`~repro.hpf.errors.BernsteinViolationError` -- reproducing
the compiler's rejection that motivates the PRIVATE extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Set, Tuple

import numpy as np

from .errors import BernsteinViolationError

__all__ = ["RecordingArray", "AccessLog", "check_independent", "independent_do"]


@dataclass
class AccessLog:
    """Read/write index sets of one loop iteration, per array name."""

    reads: Dict[str, Set[int]] = field(default_factory=dict)
    writes: Dict[str, Set[int]] = field(default_factory=dict)

    def record_read(self, name: str, index: int) -> None:
        self.reads.setdefault(name, set()).add(index)

    def record_write(self, name: str, index: int) -> None:
        self.writes.setdefault(name, set()).add(index)


class RecordingArray:
    """NumPy-array proxy that logs element reads and writes.

    Scalar indexing only (loop bodies index element-wise, as the paper's
    Fortran loops do).  Reading an element that is later written in the
    same iteration is still a read -- Bernstein's conditions operate on the
    full sets.
    """

    def __init__(self, name: str, data: np.ndarray, log: AccessLog):
        self.name = name
        self.data = data
        self._log = log

    def __getitem__(self, index: int) -> float:
        index = int(index)
        self._log.record_read(self.name, index)
        return float(self.data[index])

    def __setitem__(self, index: int, value: float) -> None:
        index = int(index)
        self._log.record_write(self.name, index)
        self.data[index] = value

    def __len__(self) -> int:
        return len(self.data)


def check_independent(
    logs: Sequence[AccessLog],
) -> None:
    """Verify Bernstein's conditions across iteration access logs.

    Raises :class:`BernsteinViolationError` naming the array, the kind of
    dependency (write-write or read-write) and a witness element.
    """
    # aggregate: element -> first iteration that wrote/read it
    writes_seen: Dict[Tuple[str, int], int] = {}
    reads_seen: Dict[Tuple[str, int], int] = {}
    for it, log in enumerate(logs):
        for name, idxs in log.writes.items():
            for i in idxs:
                key = (name, i)
                prev = writes_seen.get(key)
                if prev is not None and prev != it:
                    raise BernsteinViolationError(
                        f"write-after-write on {name}({i}): iterations {prev} "
                        f"and {it} both assign it (violates Bernstein's "
                        "conditions; loop is not INDEPENDENT)"
                    )
                writes_seen.setdefault(key, it)
    for it, log in enumerate(logs):
        for name, idxs in log.reads.items():
            for i in idxs:
                key = (name, i)
                w_it = writes_seen.get(key)
                if w_it is not None and w_it != it:
                    raise BernsteinViolationError(
                        f"read-write conflict on {name}({i}): iteration {it} "
                        f"reads what iteration {w_it} writes (violates "
                        "Bernstein's conditions; loop is not INDEPENDENT)"
                    )
                reads_seen.setdefault(key, it)


def independent_do(
    indices: Sequence[int],
    body: Callable[..., None],
    arrays: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """``!HPF$ INDEPENDENT`` DO loop with runtime verification.

    Runs ``body(j, **proxies)`` for each ``j`` against recording proxies of
    ``arrays`` (each iteration sees a private *trace* copy so the check is
    order-insensitive), validates Bernstein's conditions, and only then
    commits the effects by re-running on the real arrays.

    Returns ``arrays`` (mutated in place) for convenience.
    """
    logs = []
    # trace phase on scratch copies
    scratch = {name: a.copy() for name, a in arrays.items()}
    for j in indices:
        log = AccessLog()
        proxies = {
            name: RecordingArray(name, data, log) for name, data in scratch.items()
        }
        body(int(j), **proxies)
        logs.append(log)
    check_independent(logs)
    # commit phase on the real data
    commit_log = AccessLog()
    for j in indices:
        proxies = {
            name: RecordingArray(name, data, commit_log)
            for name, data in arrays.items()
        }
        body(int(j), **proxies)
    return arrays
