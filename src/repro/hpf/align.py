"""ALIGN semantics: alignment groups with cascading redistribution.

The paper aligns all CG vectors with ``p``::

    !HPF$ ALIGN (:) WITH p(:) :: q, r, x
    !HPF$ DISTRIBUTE p(BLOCK)

"Vector p is chosen as the target of the ultimate alignment thus the
distribution of p determines the distribution of all other vectors aligned
with it.  Whenever its distribution is changed, the others are also
automatically redistributed."  :class:`AlignmentGroup` implements exactly
that: one *target* array, any number of identity-aligned members, and a
:meth:`redistribute` that moves every member at once (charging the machine
for the data motion).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .distribution import Distribution
from .errors import AlignmentError

if TYPE_CHECKING:  # pragma: no cover
    from .array import DistributedArray

__all__ = ["AlignmentGroup", "aligned"]


class AlignmentGroup:
    """A set of equal-extent arrays sharing one distribution.

    The first array is the alignment target; members follow its
    distribution forever after.
    """

    def __init__(self, target: "DistributedArray"):
        self.target = target
        self.members: List["DistributedArray"] = [target]

    def add(self, array: "DistributedArray") -> None:
        """Identity-align ``array`` with the group's target.

        The array is redistributed to the target's current distribution if
        necessary (this is creation-time layout, not runtime traffic, so it
        is not charged to the machine).
        """
        if array in self.members:
            return
        if array.n != self.target.n:
            raise AlignmentError(
                f"cannot align extent {array.n} with target extent "
                f"{self.target.n} (only identity alignment is supported)"
            )
        if array.group is not None and array.group is not self:
            raise AlignmentError(
                f"array {array.name!r} already belongs to another alignment group"
            )
        if not array.distribution.same_mapping(self.target.distribution):
            array._relayout(self.target.distribution)
        array.group = self
        self.members.append(array)

    def redistribute(
        self, new_distribution: Distribution, charge: bool = True
    ) -> None:
        """Move every member to ``new_distribution`` (cascade semantics)."""
        for member in self.members:
            member._redistribute_single(new_distribution, charge=charge)

    def names(self) -> List[Optional[str]]:
        return [m.name for m in self.members]

    def __contains__(self, array: "DistributedArray") -> bool:
        return array in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AlignmentGroup(target={self.target.name!r}, size={len(self.members)})"


def aligned(*arrays: "DistributedArray") -> bool:
    """True when all arrays place every element on the same rank.

    This is the owner-computes precondition for element-wise operations:
    HPF performs "parallel array assignments" without communication only on
    co-located operands.
    """
    if len(arrays) < 2:
        return True
    first = arrays[0]
    return all(
        a.n == first.n
        and (
            a.distribution.same_mapping(first.distribution)
            or a.distribution.is_replicated
            or first.distribution.is_replicated
        )
        for a in arrays[1:]
    )
