"""Distributed Array Descriptors (DADs).

"Distributed array descriptors (DAD) for the dynamically distributed arrays
are generated at runtime.  DADs contain information about the portions of
the arrays residing on each processor.  The compiler uses this hint to
generate communication calls and to distribute corresponding loop
iterations." (Section 5.2.1.)

:class:`DistributedArrayDescriptor` is that runtime record: a frozen
snapshot of an array's layout that redistribution, the inspector--executor
and the atom machinery consult.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .distribution import Distribution

__all__ = ["DistributedArrayDescriptor"]


@dataclass(frozen=True)
class DistributedArrayDescriptor:
    """Immutable snapshot of one distributed array's layout."""

    name: Optional[str]
    extent: int
    dtype: str
    nprocs: int
    distribution: Distribution
    counts: Tuple[int, ...]
    dynamic: bool = False
    align_target: Optional[str] = None

    @classmethod
    def of(cls, array, dynamic: bool = False) -> "DistributedArrayDescriptor":
        """Build the descriptor of a :class:`~repro.hpf.array.DistributedArray`."""
        target = None
        if array.group is not None and array.group.target is not array:
            target = array.group.target.name
        return cls(
            name=array.name,
            extent=array.n,
            dtype=str(array.dtype),
            nprocs=array.machine.nprocs,
            distribution=array.distribution,
            counts=tuple(int(c) for c in array.distribution.counts()),
            dynamic=dynamic,
            align_target=target,
        )

    def local_extent(self, rank: int) -> int:
        """Portion of the array residing on ``rank``."""
        return self.counts[rank]

    @property
    def max_local_extent(self) -> int:
        return max(self.counts) if self.counts else 0

    @property
    def is_balanced(self) -> bool:
        """True when rank loads differ by at most one element."""
        if not self.counts:
            return True
        return max(self.counts) - min(self.counts) <= 1

    def imbalance(self) -> float:
        """Max/mean element count across ranks (1.0 = perfect)."""
        mean = float(np.mean(self.counts)) if self.counts else 0.0
        if mean == 0:
            return 1.0
        return max(self.counts) / mean
