"""The ``!HPF$ PROCESSORS`` directive: named processor arrangements.

The paper only uses one-dimensional arrangements (``PROCESSORS ::
PROCS(NP)``); multi-dimensional shapes are supported for completeness since
HPF-1 allows them.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .errors import MappingError

__all__ = ["ProcessorArrangement"]


class ProcessorArrangement:
    """A named grid of abstract processors.

    Parameters
    ----------
    name:
        Arrangement name from the directive (e.g. ``"PROCS"``).
    shape:
        Extent per dimension; total size is the machine's ``N_P``.
    """

    def __init__(self, name: str, shape: Tuple[int, ...]):
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(s) for s in shape)
        if not shape or any(s < 1 for s in shape):
            raise MappingError(f"invalid processor shape {shape}")
        self.name = name
        self.shape = shape

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def rank_of(self, *coords: int) -> int:
        """Linearise grid coordinates (row-major) to a machine rank."""
        if len(coords) != self.ndim:
            raise MappingError(
                f"{self.name} has {self.ndim} dimensions, got {len(coords)} coords"
            )
        for c, s in zip(coords, self.shape):
            if not 0 <= c < s:
                raise MappingError(f"coordinate {coords} out of range for {self.shape}")
        return int(np.ravel_multi_index(coords, self.shape))

    def coords_of(self, rank: int) -> Tuple[int, ...]:
        """Grid coordinates of a machine rank."""
        if not 0 <= rank < self.size:
            raise MappingError(f"rank {rank} out of range for {self.shape}")
        return tuple(int(c) for c in np.unravel_index(rank, self.shape))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = ", ".join(str(s) for s in self.shape)
        return f"ProcessorArrangement({self.name}({dims}))"
