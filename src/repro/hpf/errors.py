"""Exception hierarchy for the HPF runtime.

Several of these encode *language rules* the paper leans on: HPF-1 rejects
the CSC scatter loop both as a FORALL (accumulation not allowed --
:class:`ManyToOneAssignmentError`) and as an INDEPENDENT DO (write-after-
write dependency violates Bernstein's conditions --
:class:`BernsteinViolationError`).  Raising them is how this runtime
reproduces the compiler behaviour that motivates the paper's Section-5
extensions.
"""

from __future__ import annotations

__all__ = [
    "HpfError",
    "DistributionError",
    "AlignmentError",
    "MappingError",
    "ManyToOneAssignmentError",
    "BernsteinViolationError",
    "DirectiveSyntaxError",
    "DirectiveSemanticError",
]


class HpfError(Exception):
    """Base class of every HPF-runtime error."""


class DistributionError(HpfError):
    """Invalid distribution specification (bad block size, extent, ...)."""


class AlignmentError(HpfError):
    """Operands are not aligned / array cannot join an alignment group."""


class MappingError(HpfError):
    """Iteration or data mapping is inconsistent (e.g. ON PROCESSOR out of range)."""


class ManyToOneAssignmentError(HpfError):
    """A FORALL attempted to assign one element from several iterations.

    "The option of using a FORALL is eliminated because its semantics
    require that all the right-hand sides should be computed before an
    assignment to the left-hand sides be done.  An accumulation operation
    like we would like to express is not allowed within the FORALL body."
    (Section 5.1.)
    """


class BernsteinViolationError(HpfError):
    """An INDEPENDENT loop's iterations violate Bernstein's conditions.

    "The write-after-write dependency violates Bernstein's conditions [3],
    and eliminates the possibility of using an INDEPENDENT DO."
    (Section 5.1.)
    """


class DirectiveSyntaxError(HpfError):
    """A ``!HPF$`` / ``!EXT$`` directive failed to parse."""


class DirectiveSemanticError(HpfError):
    """A directive parsed but refers to unknown arrays / invalid mappings."""
