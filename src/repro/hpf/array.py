"""Distributed arrays executing under the owner-computes rule.

A :class:`DistributedArray` is the runtime object behind an HPF array: the
global index space is split by a :class:`~repro.hpf.distribution.Distribution`
and each simulated rank holds its local block as a NumPy array.  Every
operation charges the machine exactly what the compiled code would cost:

* element-wise operations and SAXPYs run locally on aligned operands
  ("SAXPY operations are easily performed using HPF's parallel array
  assignments ... performed in O(n/N_P) time on any architecture");
* inner products run locally then pay one allreduce ("the merge phase for
  adding up the partial results from processors involves communication
  overhead");
* operations on *unaligned* operands raise
  :class:`~repro.hpf.errors.AlignmentError` rather than silently
  communicating -- data motion must be explicit (``gather_to_all`` or
  ``redistribute``), mirroring what the directives make visible.

:class:`DistributedDenseMatrix` is the 2-D companion used by the dense
Scenarios 1 and 2 (Figures 3 and 4): one dimension distributed, the other
replicated -- ``(BLOCK, *)`` or ``(*, BLOCK)``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

import numpy as np

from .align import AlignmentGroup
from .descriptor import DistributedArrayDescriptor
from .distribution import Block, Distribution
from .errors import AlignmentError, DistributionError

__all__ = ["DistributedArray", "DistributedDenseMatrix"]

Scalar = Union[int, float, np.floating]


class DistributedArray:
    """A one-dimensional HPF array distributed across the machine's ranks.

    Parameters
    ----------
    machine:
        The simulated multicomputer the array lives on.
    n:
        Global extent.
    distribution:
        Element mapping; defaults to HPF ``BLOCK``.
    dtype, name, fill:
        Element type, optional debug name, initial value.
    """

    def __init__(
        self,
        machine,
        n: int,
        distribution: Optional[Distribution] = None,
        dtype=np.float64,
        name: Optional[str] = None,
        fill: float = 0.0,
    ):
        if distribution is None:
            distribution = Block(n, machine.nprocs)
        if distribution.n != n:
            raise DistributionError(
                f"distribution extent {distribution.n} != array extent {n}"
            )
        if distribution.nprocs != machine.nprocs:
            raise DistributionError(
                f"distribution nprocs {distribution.nprocs} != machine "
                f"nprocs {machine.nprocs}"
            )
        self.machine = machine
        self.n = int(n)
        self.distribution = distribution
        self.dtype = np.dtype(dtype)
        self.name = name
        self.group: Optional[AlignmentGroup] = None
        self._locals: List[np.ndarray] = [
            np.full(distribution.local_count(r), fill, dtype=self.dtype)
            for r in range(machine.nprocs)
        ]
        for r in range(machine.nprocs):
            machine.charge_storage(r, float(self._locals[r].size))

    # ------------------------------------------------------------------ #
    # construction / inspection
    # ------------------------------------------------------------------ #
    @classmethod
    def from_global(
        cls,
        machine,
        values: np.ndarray,
        distribution: Optional[Distribution] = None,
        name: Optional[str] = None,
    ) -> "DistributedArray":
        """Distribute a host array onto the machine (layout-time, uncharged)."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("from_global expects a 1-D array")
        arr = cls(
            machine,
            values.shape[0],
            distribution,
            dtype=values.dtype,
            name=name,
        )
        for r in range(machine.nprocs):
            arr._locals[r][:] = values[arr.distribution.local_indices_cached(r)]
        return arr

    def to_global(self) -> np.ndarray:
        """Assemble the global array on the host (uncharged inspection)."""
        out = np.empty(self.n, dtype=self.dtype)
        if self.distribution.is_replicated:
            if self.machine.nprocs:
                out[:] = self._locals[0]
            return out
        for r in range(self.machine.nprocs):
            out[self.distribution.local_indices_cached(r)] = self._locals[r]
        return out

    def local(self, rank: int) -> np.ndarray:
        """The local block owned by ``rank`` (a live view)."""
        return self._locals[rank]

    def descriptor(self, dynamic: bool = False) -> DistributedArrayDescriptor:
        """Generate this array's DAD."""
        return DistributedArrayDescriptor.of(self, dynamic=dynamic)

    def copy(self, name: Optional[str] = None) -> "DistributedArray":
        """Allocate an identically-distributed copy of this array."""
        out = DistributedArray(
            self.machine, self.n, self.distribution, self.dtype, name
        )
        for r in range(self.machine.nprocs):
            out._locals[r][:] = self._locals[r]
        return out

    def new_aligned(
        self, name: Optional[str] = None, fill: float = 0.0
    ) -> "DistributedArray":
        """Allocate a new array aligned (and grouped) with this one."""
        out = DistributedArray(
            self.machine, self.n, self.distribution, self.dtype, name, fill
        )
        out.align_with(self)
        return out

    # ------------------------------------------------------------------ #
    # alignment / redistribution
    # ------------------------------------------------------------------ #
    def align_with(self, target: "DistributedArray") -> "DistributedArray":
        """``ALIGN self(:) WITH target(:)`` -- join the target's group."""
        if target.group is None:
            target.group = AlignmentGroup(target)
        target.group.add(self)
        return self

    def _relayout(self, new_distribution: Distribution) -> None:
        """Move to a new layout without charging (creation-time only)."""
        values = self.to_global()
        self.distribution = new_distribution
        self._locals = [
            values[new_distribution.local_indices_cached(r)].astype(self.dtype)
            for r in range(self.machine.nprocs)
        ]

    def _redistribute_single(
        self, new_distribution: Distribution, charge: bool = True
    ) -> None:
        """Redistribute this array only (group cascade handled by caller)."""
        if new_distribution.n != self.n:
            raise DistributionError(
                f"cannot redistribute extent {self.n} to extent "
                f"{new_distribution.n}"
            )
        if new_distribution.nprocs != self.machine.nprocs:
            raise DistributionError("redistribution must keep the same machine")
        if charge and not self.distribution.same_mapping(new_distribution):
            self._charge_redistribution(new_distribution)
        self._relayout(new_distribution)

    def _charge_redistribution(self, new_distribution: Distribution) -> None:
        """Price the data motion of a redistribution.

        Every element whose owner changes moves once; per-rank message
        counts come from the distinct (old owner -> new owner) pairs.
        """
        if self.distribution.is_replicated:
            # replicated -> distributed: no traffic, every rank narrows
            return
        old = self.distribution.owner_map()
        if new_distribution.is_replicated:
            # distributed -> replicated is an allgather
            self.machine.allgather(
                float(self.distribution.max_local_count()), tag="redistribute"
            )
            return
        new = new_distribution.owner_map()
        moving = old != new
        words = float(np.count_nonzero(moving))
        if words == 0:
            return
        pairs = np.unique(
            old[moving].astype(np.int64) * self.machine.nprocs + new[moving]
        )
        messages = int(pairs.size)
        # makespan: the busiest rank's outgoing traffic, one startup per peer
        out_words = np.zeros(self.machine.nprocs)
        np.add.at(out_words, old[moving], 1.0)
        out_peers = np.zeros(self.machine.nprocs)
        np.add.at(out_peers, pairs // self.machine.nprocs, 1.0)
        cost = self.machine.cost
        time = float(
            (out_peers * cost.t_startup + out_words * cost.t_comm).max()
        )
        self.machine.charge_comm_interval(
            "redistribute", messages, words, time,
            participants=list(self.machine.ranks),
        )

    def redistribute(self, new_distribution: Distribution, charge: bool = True) -> None:
        """``REDISTRIBUTE`` this array -- cascades through its group."""
        if self.group is not None:
            self.group.redistribute(new_distribution, charge=charge)
        else:
            self._redistribute_single(new_distribution, charge=charge)

    # ------------------------------------------------------------------ #
    # element-wise execution (owner computes)
    # ------------------------------------------------------------------ #
    def _other_block(self, other: "DistributedArray", rank: int) -> np.ndarray:
        """The piece of ``other`` co-located with this array's rank block."""
        if other.distribution.is_replicated and not self.distribution.is_replicated:
            return other._locals[rank][self.distribution.local_indices_cached(rank)]
        if other.distribution.same_mapping(self.distribution):
            return other._locals[rank]
        raise AlignmentError(
            f"operands {self.name!r} and {other.name!r} are not aligned; "
            "redistribute or gather explicitly"
        )

    def _check_operand(self, other: "DistributedArray") -> None:
        if other.machine is not self.machine:
            raise AlignmentError("operands live on different machines")
        if other.n != self.n:
            raise AlignmentError(
                f"extent mismatch: {self.n} vs {other.n}"
            )

    def _ewise_inplace(
        self,
        other: Union["DistributedArray", Scalar],
        fn: Callable[[np.ndarray, np.ndarray], None],
        flops_per_element: float,
    ) -> "DistributedArray":
        if isinstance(other, DistributedArray):
            self._check_operand(other)
            for r in range(self.machine.nprocs):
                fn(self._locals[r], self._other_block(other, r))
                self.machine.charge_compute(
                    r, flops_per_element * self._locals[r].size
                )
        else:
            val = float(other)
            for r in range(self.machine.nprocs):
                fn(self._locals[r], val)
                self.machine.charge_compute(
                    r, flops_per_element * self._locals[r].size
                )
        return self

    # -- assignments ---------------------------------------------------- #
    def fill(self, value: float) -> "DistributedArray":
        """``a = value`` (no flops charged: a store, not arithmetic)."""
        for r in range(self.machine.nprocs):
            self._locals[r][:] = value
        return self

    def assign(self, other: "DistributedArray") -> "DistributedArray":
        """``a = b`` for aligned ``b`` (local copy, no flops)."""
        self._check_operand(other)
        for r in range(self.machine.nprocs):
            self._locals[r][:] = self._other_block(other, r)
        return self

    # -- BLAS-1 style kernels (the paper's SAXPY family) ----------------- #
    def axpy(self, alpha: float, x: "DistributedArray") -> "DistributedArray":
        """``self = self + alpha * x`` -- the paper's saxpy (2 flops/elem)."""

        def fn(mine: np.ndarray, theirs: np.ndarray) -> None:
            mine += alpha * theirs

        return self._ewise_inplace(x, fn, 2.0)

    def saypx(self, alpha: float, x: "DistributedArray") -> "DistributedArray":
        """``self = alpha * self + x`` -- the paper's saypx
        (``p = beta * p + r``), 2 flops/elem."""

        def fn(mine: np.ndarray, theirs: np.ndarray) -> None:
            mine *= alpha
            mine += theirs

        return self._ewise_inplace(x, fn, 2.0)

    def scale(self, alpha: float) -> "DistributedArray":
        """``self = alpha * self`` (1 flop/elem)."""
        for r in range(self.machine.nprocs):
            self._locals[r] *= alpha
            self.machine.charge_compute(r, float(self._locals[r].size))
        return self

    def iadd(self, other) -> "DistributedArray":
        def fn(mine, theirs):
            mine += theirs

        return self._ewise_inplace(other, fn, 1.0)

    def isub(self, other) -> "DistributedArray":
        def fn(mine, theirs):
            mine -= theirs

        return self._ewise_inplace(other, fn, 1.0)

    def imul(self, other) -> "DistributedArray":
        def fn(mine, theirs):
            mine *= theirs

        return self._ewise_inplace(other, fn, 1.0)

    def idiv(self, other) -> "DistributedArray":
        def fn(mine, theirs):
            mine /= theirs

        return self._ewise_inplace(other, fn, 1.0)

    # -- new-array operators --------------------------------------------- #
    def _binary_new(self, other, fn, flops) -> "DistributedArray":
        out = self.copy()
        return out._ewise_inplace(other, fn, flops)

    def __add__(self, other):
        return self._binary_new(other, lambda m, t: m.__iadd__(t), 1.0)

    def __sub__(self, other):
        return self._binary_new(other, lambda m, t: m.__isub__(t), 1.0)

    def __mul__(self, other):
        return self._binary_new(other, lambda m, t: m.__imul__(t), 1.0)

    def __rmul__(self, other):
        return self.__mul__(other)

    def __truediv__(self, other):
        return self._binary_new(other, lambda m, t: m.__itruediv__(t), 1.0)

    def __neg__(self):
        out = self.copy()
        for r in range(self.machine.nprocs):
            out._locals[r] *= -1.0
            self.machine.charge_compute(r, float(out._locals[r].size))
        return out

    # ------------------------------------------------------------------ #
    # reductions and data motion
    # ------------------------------------------------------------------ #
    def dot(self, other: "DistributedArray", tag: str = "dot") -> float:
        """``DOT_PRODUCT(self, other)``: local multiply-adds + one allreduce.

        "The element-wise multiplications in the inner-product operations
        can be performed locally without any communication overhead while
        the merge phase ... involves communication overhead."
        """
        self._check_operand(other)
        if self.distribution.is_replicated and not other.distribution.is_replicated:
            return other.dot(self, tag=tag)
        total = 0.0
        for r in range(self.machine.nprocs):
            theirs = self._other_block(other, r)
            total += float(self._locals[r] @ theirs)
            self.machine.charge_compute(r, 2.0 * self._locals[r].size)
        if self.distribution.is_replicated:
            # every rank computed the full dot redundantly; take one copy
            total /= max(1, self.machine.nprocs)
        else:
            self.machine.allreduce(1.0, tag=tag)
        return total

    def norm2(self, tag: str = "dot") -> float:
        """Euclidean norm via :meth:`dot`."""
        return float(np.sqrt(max(0.0, self.dot(self, tag=tag))))

    def sum(self, tag: str = "sum") -> float:
        """``SUM(self)``: local sums + allreduce."""
        total = 0.0
        for r in range(self.machine.nprocs):
            total += float(self._locals[r].sum())
            self.machine.charge_compute(r, float(self._locals[r].size))
        if self.distribution.is_replicated:
            total /= max(1, self.machine.nprocs)
        else:
            self.machine.allreduce(1.0, tag=tag)
        return total

    def gather_to_all(self, tag: str = "gather") -> np.ndarray:
        """Replicate the array on every rank (all-to-all broadcast).

        This is the communication Scenario 1 needs: "this would require an
        all-to-all broadcast of the local vector elements".  Returns the
        global array; charges one allgather of the largest local block.
        """
        if self.distribution.is_replicated:
            return self.to_global()
        self.machine.allgather(
            float(self.distribution.max_local_count()), tag=tag
        )
        return self.to_global()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedArray(name={self.name!r}, n={self.n}, "
            f"dist={self.distribution!r})"
        )


class DistributedDenseMatrix:
    """An ``n x m`` dense matrix with one distributed dimension.

    ``axis=0`` gives the paper's ``(BLOCK, *)`` row partitioning aligned
    with ``p`` (Scenario 1 / Figure 3); ``axis=1`` gives ``(*, BLOCK)``
    column partitioning (Scenario 2 / Figure 4).
    """

    def __init__(
        self,
        machine,
        array: np.ndarray,
        distribution: Optional[Distribution] = None,
        axis: int = 0,
        name: Optional[str] = None,
    ):
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError("DistributedDenseMatrix expects a 2-D array")
        if axis not in (0, 1):
            raise ValueError("axis must be 0 (rows) or 1 (columns)")
        extent = array.shape[axis]
        if distribution is None:
            distribution = Block(extent, machine.nprocs)
        if distribution.n != extent:
            raise DistributionError(
                f"distribution extent {distribution.n} != axis extent {extent}"
            )
        if distribution.is_replicated:
            raise DistributionError("use a plain ndarray for fully replicated matrices")
        self.machine = machine
        self.shape = array.shape
        self.axis = axis
        self.distribution = distribution
        self.name = name
        if axis == 0:
            self._blocks = [
                array[distribution.local_indices_cached(r), :] for r in range(machine.nprocs)
            ]
        else:
            self._blocks = [
                array[:, distribution.local_indices_cached(r)] for r in range(machine.nprocs)
            ]
        for r in range(machine.nprocs):
            machine.charge_storage(r, float(self._blocks[r].size))

    def local_block(self, rank: int) -> np.ndarray:
        """The rank's local rows (axis=0) or columns (axis=1)."""
        return self._blocks[rank]

    def to_global(self) -> np.ndarray:
        """Reassemble the dense matrix on the host (uncharged)."""
        out = np.empty(self.shape)
        for r in range(self.machine.nprocs):
            idx = self.distribution.local_indices_cached(r)
            if self.axis == 0:
                out[idx, :] = self._blocks[r]
            else:
                out[:, idx] = self._blocks[r]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "(BLOCK, *)" if self.axis == 0 else "(*, BLOCK)"
        return f"DistributedDenseMatrix(name={self.name!r}, shape={self.shape}, {kind})"
