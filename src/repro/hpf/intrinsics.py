"""Fortran-90 / HPF intrinsic functions over distributed arrays.

"HPF readily supports the inner product operations by an intrinsic
function, called DOT_PRODUCT()."  These wrappers use the HPF spelling of
each intrinsic and charge the machine for the local phase plus the merge
phase, exactly as :class:`~repro.hpf.array.DistributedArray` does.
``sum_private_copies`` is the runtime-library merge the paper describes for
privatised loops ("A runtime library function similar to Fortran 90 SUM
intrinsic reduction function can provide the necessary merging of these
temporary values into a single vector outside the loop").
"""

from __future__ import annotations

from typing import List

import numpy as np

from .array import DistributedArray

__all__ = [
    "dot_product",
    "sum_",
    "maxval",
    "minval",
    "sum_private_copies",
]


def dot_product(x: DistributedArray, y: DistributedArray, tag: str = "dot") -> float:
    """``DOT_PRODUCT(x, y)`` -- local multiplies plus a scalar allreduce."""
    return x.dot(y, tag=tag)


def sum_(x: DistributedArray, tag: str = "sum") -> float:
    """``SUM(x)`` over a distributed array."""
    return x.sum(tag=tag)


def _reduce_scalar(x: DistributedArray, np_op, flops_per_elem: float, tag: str) -> float:
    vals = []
    for r in range(x.machine.nprocs):
        block = x.local(r)
        if block.size:
            vals.append(float(np_op(block)))
        x.machine.charge_compute(r, flops_per_elem * block.size)
    if not x.distribution.is_replicated:
        x.machine.allreduce(1.0, tag=tag)
    if not vals:
        raise ValueError("reduction over an empty array")
    return float(np_op(np.asarray(vals)))


def maxval(x: DistributedArray, tag: str = "maxval") -> float:
    """``MAXVAL(x)``: local maxima + one-word allreduce."""
    return _reduce_scalar(x, np.max, 1.0, tag)


def minval(x: DistributedArray, tag: str = "minval") -> float:
    """``MINVAL(x)``: local minima + one-word allreduce."""
    return _reduce_scalar(x, np.min, 1.0, tag)


def sum_private_copies(
    copies: List[np.ndarray], out: DistributedArray, tag: str = "merge"
) -> DistributedArray:
    """Merge per-processor private vectors into a distributed result.

    ``out[i] = sum_r copies[r][i]`` restricted to each rank's owned block:
    a reduce-scatter of ``n`` words plus the local additions.  This is the
    SUM-style runtime merge of Section 5.1, also used by the Scenario-2
    two-dimensional-temporary variant ("At the end of the outer loop we use
    the HPF SUM intrinsic to generate the final vector").
    """
    machine = out.machine
    n = out.n
    if len(copies) != machine.nprocs:
        raise ValueError(
            f"need one private copy per rank ({machine.nprocs}), got {len(copies)}"
        )
    for r, c in enumerate(copies):
        if c.shape != (n,):
            raise ValueError(
                f"private copy of rank {r} has shape {c.shape}, expected ({n},)"
            )
    stacked = np.sum(np.stack(copies, axis=0), axis=0)
    for r in range(machine.nprocs):
        out.local(r)[:] = stacked[out.distribution.local_indices_cached(r)]
        # each rank adds P partial blocks of its n/P elements
        machine.charge_compute(
            r, float((machine.nprocs - 1) * out.local(r).size)
        )
    machine.reduce_scatter(float(n), tag=tag)
    return out
