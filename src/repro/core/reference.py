"""Sequential reference solvers (pure NumPy, no machine model).

These are the numerical ground truth the distributed HPF implementations
are validated against, plus the dense direct solver the paper contrasts CG
with ("Conjugate Gradient and other iterative methods are preferred over
simple Gaussian elimination when A is very large and sparse").

The CG loop follows the paper's Figure-2 structure exactly: ``rho = r.r``,
``beta = rho/rho0``, ``p = beta*p + r`` (saypx), ``q = A p``,
``alpha = rho / p.q``, then the two SAXPY updates.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..sparse.convert import as_matrix
from .result import ConvergenceHistory, SolveResult
from .stopping import StoppingCriterion

__all__ = [
    "cg_reference",
    "pcg_reference",
    "bicg_reference",
    "cgs_reference",
    "bicgstab_reference",
    "gaussian_elimination",
]


def _prep(matrix, b, x0):
    A = as_matrix(matrix)
    b = np.asarray(b, dtype=np.float64)
    n = A.nrows
    if A.nrows != A.ncols:
        raise ValueError("iterative solvers need a square matrix")
    if b.shape != (n,):
        raise ValueError(f"b must have shape ({n},), got {b.shape}")
    x = (
        np.zeros(n)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )
    if x.shape != (n,):
        raise ValueError(f"x0 must have shape ({n},)")
    return A, b, x


def cg_reference(
    matrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Classic non-preconditioned CG (paper Section 2, Figure 2)."""
    A, b, x = _prep(matrix, b, x0)
    crit = criterion or StoppingCriterion()
    bnorm = float(np.linalg.norm(b))
    history = ConvergenceHistory()

    r = b - A.matvec(x)
    p = r.copy()
    rho = float(r @ r)
    history.append(np.sqrt(rho))
    if crit.satisfied(np.sqrt(rho), bnorm):
        return SolveResult(x, True, 0, history, "cg")
    converged = False
    iterations = 0
    for k in range(1, crit.cap(A.nrows) + 1):
        if k > 1:
            beta = rho / rho0
            p = r + beta * p  # saypx
        q = A.matvec(p)
        pq = float(p @ q)
        if pq == 0.0:
            break
        alpha = rho / pq
        x += alpha * p  # saxpy
        r -= alpha * q  # saxpy
        rho0 = rho
        rho = float(r @ r)
        history.append(np.sqrt(rho))
        iterations = k
        if crit.satisfied(np.sqrt(rho), bnorm):
            converged = True
            break
    return SolveResult(x, converged, iterations, history, "cg")


def pcg_reference(
    matrix,
    b: np.ndarray,
    preconditioner,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Preconditioned CG: same recurrence on the preconditioned residual.

    "A preconditioner for A can be added to any of the algorithms described
    above and which will increase the speed of convergence" (Section 2.1).
    ``preconditioner`` must expose ``solve(r) -> z``.
    """
    A, b, x = _prep(matrix, b, x0)
    crit = criterion or StoppingCriterion()
    bnorm = float(np.linalg.norm(b))
    history = ConvergenceHistory()

    r = b - A.matvec(x)
    history.append(np.linalg.norm(r))
    if crit.satisfied(history.final, bnorm):
        return SolveResult(x, True, 0, history, "pcg")
    z = preconditioner.solve(r)
    p = z.copy()
    rho = float(r @ z)
    converged = False
    iterations = 0
    for k in range(1, crit.cap(A.nrows) + 1):
        q = A.matvec(p)
        pq = float(p @ q)
        if pq == 0.0:
            break
        alpha = rho / pq
        x += alpha * p
        r -= alpha * q
        history.append(np.linalg.norm(r))
        iterations = k
        if crit.satisfied(history.final, bnorm):
            converged = True
            break
        z = preconditioner.solve(r)
        rho0 = rho
        rho = float(r @ z)
        beta = rho / rho0
        p = z + beta * p
    return SolveResult(x, converged, iterations, history, "pcg")


def bicg_reference(
    matrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Bi-Conjugate Gradient for nonsymmetric systems (Section 2.1).

    "The BiCG algorithm employs an alternative approach of using two
    mutually orthogonal sequences of residuals.  This requires three extra
    vectors to be stored ... BiCG does however require two matrix-vector
    multiply operations one of which uses the matrix transpose A^T."
    """
    A, b, x = _prep(matrix, b, x0)
    crit = criterion or StoppingCriterion()
    bnorm = float(np.linalg.norm(b))
    history = ConvergenceHistory()

    r = b - A.matvec(x)
    rt = r.copy()  # shadow residual
    history.append(np.linalg.norm(r))
    if crit.satisfied(history.final, bnorm):
        return SolveResult(x, True, 0, history, "bicg")
    p = np.zeros_like(r)
    pt = np.zeros_like(r)
    rho = 1.0
    converged = False
    iterations = 0
    for k in range(1, crit.cap(A.nrows) + 1):
        rho0 = rho
        rho = float(rt @ r)
        if rho == 0.0:
            break  # breakdown
        beta = 0.0 if k == 1 else rho / rho0
        p = r + beta * p
        pt = rt + beta * pt
        q = A.matvec(p)
        qt = A.rmatvec(pt)  # the A^T product
        ptq = float(pt @ q)
        if ptq == 0.0:
            break
        alpha = rho / ptq
        x += alpha * p
        r -= alpha * q
        rt -= alpha * qt
        history.append(np.linalg.norm(r))
        iterations = k
        if crit.satisfied(history.final, bnorm):
            converged = True
            break
    return SolveResult(x, converged, iterations, history, "bicg")


def cgs_reference(
    matrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Conjugate Gradient Squared (Section 2.1).

    "Avoids using A^T operations but also requires additional vectors of
    storage over the basic CG ... can have some undesirable numerical
    properties such as actual divergence or irregular rates of
    convergence."
    """
    A, b, x = _prep(matrix, b, x0)
    crit = criterion or StoppingCriterion()
    bnorm = float(np.linalg.norm(b))
    history = ConvergenceHistory()

    r = b - A.matvec(x)
    rt = r.copy()
    history.append(np.linalg.norm(r))
    if crit.satisfied(history.final, bnorm):
        return SolveResult(x, True, 0, history, "cgs")
    rho = 1.0
    p = np.zeros_like(r)
    u = np.zeros_like(r)
    q = np.zeros_like(r)
    converged = False
    iterations = 0
    for k in range(1, crit.cap(A.nrows) + 1):
        rho0 = rho
        rho = float(rt @ r)
        if rho == 0.0:
            break
        if k == 1:
            u = r.copy()
            p = u.copy()
        else:
            beta = rho / rho0
            u = r + beta * q
            p = u + beta * (q + beta * p)
        v = A.matvec(p)
        rtv = float(rt @ v)
        if rtv == 0.0:
            break
        alpha = rho / rtv
        q = u - alpha * v
        x += alpha * (u + q)
        r -= alpha * A.matvec(u + q)
        history.append(np.linalg.norm(r))
        iterations = k
        if crit.satisfied(history.final, bnorm):
            converged = True
            break
    return SolveResult(x, converged, iterations, history, "cgs")


def bicgstab_reference(
    matrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Stabilised BiCG (Section 2.1).

    "Also uses two matrix vector operations but avoids using A^T ...  It
    does however involve four inner products, so will have a greater demand
    for an efficient intrinsic for this than basic CG."
    """
    A, b, x = _prep(matrix, b, x0)
    crit = criterion or StoppingCriterion()
    bnorm = float(np.linalg.norm(b))
    history = ConvergenceHistory()

    r = b - A.matvec(x)
    rt = r.copy()
    history.append(np.linalg.norm(r))
    if crit.satisfied(history.final, bnorm):
        return SolveResult(x, True, 0, history, "bicgstab")
    rho = alpha = omega = 1.0
    v = np.zeros_like(r)
    p = np.zeros_like(r)
    converged = False
    iterations = 0
    for k in range(1, crit.cap(A.nrows) + 1):
        rho0 = rho
        rho = float(rt @ r)  # inner product 1
        if rho == 0.0 or omega == 0.0:
            break
        if k == 1:
            p = r.copy()
        else:
            beta = (rho / rho0) * (alpha / omega)
            p = r + beta * (p - omega * v)
        v = A.matvec(p)
        rtv = float(rt @ v)  # inner product 2
        if rtv == 0.0:
            break
        alpha = rho / rtv
        s = r - alpha * v
        snorm = float(np.linalg.norm(s))
        if crit.satisfied(snorm, bnorm):
            x += alpha * p
            history.append(snorm)
            iterations = k
            converged = True
            break
        t = A.matvec(s)
        tt = float(t @ t)  # inner product 3
        if tt == 0.0:
            break
        omega = float(t @ s) / tt  # inner product 4
        x += alpha * p + omega * s
        r = s - omega * t
        history.append(np.linalg.norm(r))
        iterations = k
        if crit.satisfied(history.final, bnorm):
            converged = True
            break
    return SolveResult(x, converged, iterations, history, "bicgstab")


def gaussian_elimination(matrix, b: np.ndarray) -> Tuple[np.ndarray, float]:
    """Dense LU with partial pivoting -- the direct-method baseline.

    Returns ``(x, flops)`` where flops counts the ~2/3 n^3 factorisation
    plus the triangular solves, so examples can contrast the O(n^3) direct
    cost with CG's O(iterations * nnz).
    """
    A = as_matrix(matrix).toarray().astype(np.float64)
    b = np.asarray(b, dtype=np.float64).copy()
    n = A.shape[0]
    if A.shape[0] != A.shape[1] or b.shape != (n,):
        raise ValueError("gaussian_elimination needs square A and matching b")
    flops = 0.0
    for k in range(n - 1):
        piv = k + int(np.argmax(np.abs(A[k:, k])))
        if A[piv, k] == 0.0:
            raise np.linalg.LinAlgError("matrix is singular")
        if piv != k:
            A[[k, piv]] = A[[piv, k]]
            b[[k, piv]] = b[[piv, k]]
        m = A[k + 1:, k] / A[k, k]
        A[k + 1:, k:] -= np.outer(m, A[k, k:])
        b[k + 1:] -= m * b[k]
        rows = n - k - 1
        cols = n - k
        flops += rows + 2.0 * rows * cols + 2.0 * rows
    # back substitution
    x = np.zeros(n)
    for i in range(n - 1, -1, -1):
        if A[i, i] == 0.0:
            raise np.linalg.LinAlgError("matrix is singular")
        x[i] = (b[i] - A[i, i + 1:] @ x[i + 1:]) / A[i, i]
        flops += 2.0 * (n - i - 1) + 2.0
    return x, flops
