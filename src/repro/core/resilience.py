"""Checkpoint/rollback recovery for the distributed solvers.

The machine layer (:mod:`repro.machine.faults`,
:mod:`repro.machine.reliable`) masks *message* faults; this module handles
the two fault classes that reach solver state:

* **fail-stop rank crashes** -- the SPMD driver re-runs the program on a
  fresh :class:`~repro.machine.scheduler.Scheduler` and every rank resumes
  from the latest *complete* coordinated checkpoint (all ranks present);
* **silent state corruption** -- a periodic *sanity audit* recomputes the
  true residual ``||b - A x||`` and compares it with the recurrence
  residual the iteration carries.  A mismatch beyond ``sanity_rtol *
  ||b||`` means ``x`` or ``r`` no longer satisfy the CG invariant
  ``r = b - A x``: the solver rolls back to the last checkpoint and
  replays.  The audit also runs before convergence is declared, so a
  corrupted solve can never report success.

Known limitation, by construction: corrupting the *search direction* ``p``
(or the scalar ``rho``) preserves the ``r = b - A x`` invariant -- the
subsequent updates ``x += alpha p`` / ``r -= alpha (A p)`` stay mutually
consistent -- so the audit cannot flag it directly.  A poisoned direction
shows up instead as *stagnation*: the true residual stops shrinking while
the recurrence stays self-consistent.  When an audit observes essentially
no progress since the previous one, the guard asks the solver to *refresh*
the direction (``p := r``, a plain CG restart), which flushes the
corruption at the price of momentarily losing conjugacy.  Either way the
final audit guarantees the returned ``x`` is genuine.

Everything here has a simulated price: checkpoint saves and restores are
charged as local memory traffic, the audit's mat-vec and reductions go
through the normal charged operations, and each recovery adds
``restart_time`` of downtime -- benchmark E19 reads the totals back out of
the result extras.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..hpf.array import DistributedArray
from ..machine.faults import FaultPlan
from ..machine.reliable import ReliableConfig

__all__ = [
    "RecoveryExhaustedError",
    "ResilienceConfig",
    "ResilienceGuard",
    "latest_complete_checkpoint",
]

_TINY = 1.0e-300


class RecoveryExhaustedError(RuntimeError):
    """Recovery gave up: more rollbacks were needed than ``max_restarts``.

    ``attempts`` carries the full attempt telemetry when the raiser has it
    (one dict per failed attempt: outcome label, victim rank, recovery
    action taken, restart iteration, backoff delay where applicable), so
    an operator reading the error can see *why* the job failed, not just
    that it did.  Raisers without per-attempt records leave it empty.
    """

    def __init__(self, message: str = "", attempts=None):
        super().__init__(message)
        self.attempts = list(attempts or [])


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs of the checkpoint/rollback layer.

    ``checkpoint_interval`` iterations between coordinated checkpoints;
    ``sanity_interval`` iterations between residual audits (an audit also
    runs on every checkpoint iteration and before declaring convergence);
    ``sanity_rtol`` scales the audit tolerance by ``||b||``;
    ``max_restarts`` bounds rollbacks (and crash re-runs) before giving up;
    ``restart_time`` is the simulated downtime charged per recovery;
    ``stagnation_factor``/``stagnation_patience`` trigger a direction
    refresh after that many *consecutive* audits in which the true residual
    shrank by less than the factor (catching otherwise-invisible
    search-direction corruption; healthy CG plateaus are non-monotone and
    short, a poisoned direction stalls indefinitely);
    ``reliable`` optionally overrides the SPMD transport tuning (defaults
    are derived from the machine's cost model).
    """

    checkpoint_interval: int = 10
    sanity_interval: int = 5
    sanity_rtol: float = 1.0e-6
    max_restarts: int = 4
    restart_time: float = 1.0e-3
    stagnation_factor: float = 0.999
    stagnation_patience: int = 3
    reliable: Optional[ReliableConfig] = None

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.sanity_interval < 1:
            raise ValueError("sanity_interval must be >= 1")
        if self.sanity_rtol <= 0:
            raise ValueError("sanity_rtol must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.restart_time < 0:
            raise ValueError("restart_time must be non-negative")
        if not 0.0 < self.stagnation_factor <= 1.0:
            raise ValueError("stagnation_factor must lie in (0, 1]")
        if self.stagnation_patience < 1:
            raise ValueError("stagnation_patience must be >= 1")


def latest_complete_checkpoint(
    store: Dict[int, Dict[int, Any]], size: int
) -> Optional[Tuple[int, Dict[int, Any]]]:
    """The newest checkpoint every rank finished writing, or ``None``.

    A crash can interrupt a checkpoint mid-write, leaving a partial entry;
    restoring from one would mix iterations, so only complete snapshots
    count.  The returned rank map is materialised into a plain dict so it
    stays valid (and picklable for the process backend) even when the
    store is a live-view durable store that is cleared or mutated
    afterwards.
    """
    for k in sorted(store, reverse=True):
        if len(store[k]) == size:
            return k, dict(store[k])
    return None


class ResilienceGuard:
    """Checkpoint, audit and rollback machinery for the HPF solvers.

    The HPF runtime executes array operations globally (no scheduler, no
    messages), so the only injectable faults are the plan's
    :class:`~repro.machine.faults.StateCorruption` entries -- which is
    exactly what the sanity audit exists to catch.  The solver calls
    :meth:`inject` once per iteration (applying any scheduled corruption)
    and :meth:`after_iteration` at the end of the body; the guard decides
    when to audit, when to checkpoint, and when to roll the iteration
    counter and the tracked vectors back.
    """

    def __init__(
        self,
        ctx,
        config: Optional[ResilienceConfig] = None,
        faults: Optional[FaultPlan] = None,
        tracked: Optional[Dict[str, DistributedArray]] = None,
    ):
        self.ctx = ctx
        self.config = config or ResilienceConfig()
        self.faults = faults if (faults is not None and faults.enabled) else None
        self.vectors: Dict[str, DistributedArray] = {"x": ctx.x, "r": ctx.r}
        if tracked:
            self.vectors.update(tracked)
        self._counts = ctx.b.distribution.counts().astype(float)
        self._scratch: Optional[DistributedArray] = None
        self._checkpoint: Optional[Dict[str, Any]] = None
        self._last_true: Optional[float] = None
        self._stagnant_audits = 0
        self.restarts = 0
        self.audits = 0
        self.checkpoints = 0
        self.corruptions_detected = 0
        self.refreshes = 0

    # ------------------------------------------------------------------ #
    def save_initial(self, scalars: Dict[str, float]) -> None:
        """Checkpoint the pre-loop state so a rollback can always land."""
        self._save(0, scalars)

    def inject(self, k: int) -> None:
        """Apply any silent corruption the fault plan schedules for ``k``."""
        if self.faults is None:
            return
        corr = self.faults.take_state_corruption(k)
        if corr is None:
            return
        v = self.vectors.get(corr.target)
        if v is None:
            return
        machine = self.ctx.machine
        for rank in range(machine.nprocs):
            block = v.local((corr.rank + rank) % machine.nprocs)
            if block.size:
                i = self.faults.draw_index(block.size)
                block[i] += (1.0 + abs(block[i])) * corr.scale
                return

    def after_iteration(
        self, k: int, rnorm: float, stopping: bool, scalars: Dict[str, float]
    ) -> Tuple[int, Dict[str, float], str]:
        """Audit/checkpoint hook at the end of iteration ``k``.

        Returns ``(k, scalars, action)`` where ``action`` is ``"ok"`` (no
        audit due, or it passed), ``"rollback"`` (corruption detected;
        ``k``/``scalars`` are the restored checkpoint's), or ``"refresh"``
        (the true residual stagnated across audits -- the solver should
        rebuild its search direction from the residual).
        """
        cfg = self.config
        need_ckpt = k % cfg.checkpoint_interval == 0
        if not (stopping or need_ckpt or k % cfg.sanity_interval == 0):
            return k, scalars, "ok"
        self.audits += 1
        true_norm = self._true_residual_norm()
        if abs(true_norm - rnorm) > cfg.sanity_rtol * max(self.ctx.bnorm, _TINY):
            self.corruptions_detected += 1
            if self.restarts >= cfg.max_restarts:
                raise RecoveryExhaustedError(
                    f"sanity audit failed at iteration {k} "
                    f"(recurrence {rnorm:.3e} vs true {true_norm:.3e}) "
                    f"after {self.restarts} rollbacks"
                )
            self.restarts += 1
            self._last_true = None
            self._stagnant_audits = 0
            kc, restored = self._restore()
            return kc, restored, "rollback"
        if (
            not stopping
            and self._last_true is not None
            and true_norm > cfg.stagnation_factor * self._last_true
        ):
            self._stagnant_audits += 1
        else:
            self._stagnant_audits = 0
        self._last_true = true_norm
        if need_ckpt:
            self._save(k, scalars)
        if self._stagnant_audits >= cfg.stagnation_patience:
            self._stagnant_audits = 0
            self.refreshes += 1
            return k, scalars, "refresh"
        return k, scalars, "ok"

    def overhead(self) -> Dict[str, float]:
        """Recovery accounting for the result extras."""
        return {
            "restarts": self.restarts,
            "audits": self.audits,
            "checkpoints": self.checkpoints,
            "corruptions_detected": self.corruptions_detected,
            "refreshes": self.refreshes,
        }

    # ------------------------------------------------------------------ #
    def _true_residual_norm(self) -> float:
        """``||b - A x||`` recomputed from scratch, fully charged."""
        ctx = self.ctx
        if self._scratch is None:
            self._scratch = ctx.new_vector("sanity")
        s = self._scratch
        ctx.strategy.apply(ctx.x, s, tag="sanity")
        s.scale(-1.0)
        s.iadd(ctx.b)
        return s.norm2(tag="sanity")

    def _save(self, k: int, scalars: Dict[str, float]) -> None:
        first = self._checkpoint is None
        self._checkpoint = {
            "k": k,
            "scalars": dict(scalars),
            "vectors": {name: v.to_global() for name, v in self.vectors.items()},
        }
        self.checkpoints += 1
        self._charge_copy()
        if first:
            machine = self.ctx.machine
            for rank in range(machine.nprocs):
                machine.charge_storage(
                    rank, float(self._counts[rank]) * len(self.vectors)
                )

    def _restore(self) -> Tuple[int, Dict[str, float]]:
        assert self._checkpoint is not None  # save_initial guarantees one
        machine = self.ctx.machine
        for name, saved in self._checkpoint["vectors"].items():
            v = self.vectors[name]
            for rank in range(machine.nprocs):
                v.local(rank)[:] = saved[v.distribution.local_indices(rank)]
        self._charge_copy()
        machine.charge_comm_interval(
            "restart", 0, 0.0, self.config.restart_time, tag="resilience"
        )
        return self._checkpoint["k"], dict(self._checkpoint["scalars"])

    def _charge_copy(self) -> None:
        # checkpoint traffic: one word moved per tracked-vector element
        self.ctx.machine.charge_compute_all(self._counts * len(self.vectors))
