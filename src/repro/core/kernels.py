"""BLAS-1-style distributed kernels named as the paper names them.

Figure 2 annotates its statements ``! sdot``, ``! saypx``, ``! saxpy``;
these free functions provide exactly that vocabulary over
:class:`~repro.hpf.array.DistributedArray`, so example code can read like
the paper.  They are thin wrappers -- the cost charging lives in the array
methods.
"""

from __future__ import annotations

from ..hpf.array import DistributedArray

__all__ = ["saxpy", "saypx", "sdot", "scopy", "sscal"]


def saxpy(alpha: float, x: DistributedArray, y: DistributedArray) -> DistributedArray:
    """``y = y + alpha * x`` -- O(n/N_P), no communication."""
    return y.axpy(alpha, x)


def saypx(alpha: float, y: DistributedArray, x: DistributedArray) -> DistributedArray:
    """``y = alpha * y + x`` (the paper's saypx: ``p = beta*p + r``)."""
    return y.saypx(alpha, x)


def sdot(x: DistributedArray, y: DistributedArray, tag: str = "dot") -> float:
    """``DOT_PRODUCT(x, y)``: local phase O(n/N_P) + allreduce merge."""
    return x.dot(y, tag=tag)


def scopy(x: DistributedArray, y: DistributedArray) -> DistributedArray:
    """``y = x`` for aligned operands (no communication)."""
    return y.assign(x)


def sscal(alpha: float, x: DistributedArray) -> DistributedArray:
    """``x = alpha * x``."""
    return x.scale(alpha)
