"""2-D (BLOCK, BLOCK) checkerboard dense mat-vec -- beyond regular stripes.

Section 4 closes: "it is not possible to reduce the communication time if
the matrix is partitioned into regular stripes either in a row-wise or
column-wise fashion."  The qualifier *stripes* matters: the textbook the
paper cites for its cost algebra (Kumar et al. [17]) shows that the 2-D
checkerboard distribution ``A(BLOCK, BLOCK)`` on a ``sqrt(P) x sqrt(P)``
processor grid cuts the per-processor communication from ``O(n)`` words to
``O(n / sqrt(P))``:

* the vector block is broadcast down each processor *column*
  (``log sqrt(P)`` stages of ``n / sqrt(P)`` words),
* each processor multiplies its ``(n/sqrt(P))^2`` block,
* partial results are sum-reduced across each processor *row*.

:class:`DenseCheckerboard` implements exactly that, charging subgroup
collectives through the machine's cost model, so benchmark E18 can verify
the paper's stripes claim *and* its boundary.
"""

from __future__ import annotations

import math

import numpy as np

from ..machine.topology import ceil_log2
from ..hpf.distribution import Block, Distribution
from .matvec import MatvecStrategy

__all__ = ["DenseCheckerboard"]


class DenseCheckerboard(MatvecStrategy):
    """Dense ``A(BLOCK, BLOCK)`` on a ``q x q`` processor grid (``P = q^2``).

    Vectors stay BLOCK over the full machine; processor ``(i, j)`` of the
    grid owns the ``(n/q x n/q)`` block ``A[rows_i, cols_j]``.  Each apply:

    1. *column broadcast*: the owners of vector block ``j`` broadcast it
       down grid column ``j`` -- per-rank ``log q`` start-ups and
       ``n/q`` words;
    2. local ``(n/q)^2`` GEMV;
    3. *row reduction*: partial products are summed across each grid row
       to the diagonal owner -- ``log q`` stages of ``n/q`` words + adds.
    """

    name = "dense_checkerboard"

    def __init__(self, machine, matrix):
        super().__init__(machine, matrix)
        q = int(round(math.sqrt(machine.nprocs)))
        if q * q != machine.nprocs:
            raise ValueError(
                "DenseCheckerboard needs a square processor count, got "
                f"{machine.nprocs}"
            )
        self.q = q
        self._dist = Block(self.n, machine.nprocs)
        self._grid_block = Block(self.n, q)  # row/col blocks of the grid
        dense = self.matrix.toarray()
        self._blocks = {}
        for gi in range(q):
            rlo, rhi = self._grid_block.local_range(gi)
            for gj in range(q):
                clo, chi = self._grid_block.local_range(gj)
                self._blocks[(gi, gj)] = dense[rlo:rhi, clo:chi]
        for gi in range(q):
            for gj in range(q):
                machine.charge_storage(gi * q + gj, float(self._blocks[(gi, gj)].size))

    # ------------------------------------------------------------------ #
    def vector_distribution(self) -> Distribution:
        return self._dist

    def _charge_subgroup_stage(self, op: str, tag: str, with_flops: bool) -> None:
        """One log-q tree phase within every grid column (or row) at once."""
        if self.q == 1:
            return
        cost = self.machine.cost
        m = float(self._grid_block.max_local_count())  # n / q words
        stages = ceil_log2(self.q)
        time = stages * cost.message_time(m)
        if with_flops:
            time += stages * m * cost.t_flop
        messages = (self.q - 1) * self.q  # per group q-1 msgs, q groups
        words = messages * m
        self.machine.charge_comm_interval(
            op, messages, words, time, tag, participants=list(self.machine.ranks)
        )

    def apply(self, p, q_out, tag: str = "matvec") -> None:
        self._check_vectors(p, q_out)
        # 1. broadcast vector blocks down grid columns
        self._charge_subgroup_stage("grid_bcast", tag, with_flops=False)
        p_full = p.to_global()
        # 2. local block GEMV + 3. row reduction
        partial_rows = [np.zeros(0)] * self.q
        for gi in range(self.q):
            rlo, rhi = self._grid_block.local_range(gi)
            acc = np.zeros(rhi - rlo)
            for gj in range(self.q):
                clo, chi = self._grid_block.local_range(gj)
                block = self._blocks[(gi, gj)]
                acc += block @ p_full[clo:chi]
                self.machine.charge_compute(gi * self.q + gj, 2.0 * block.size)
            partial_rows[gi] = acc
        self._charge_subgroup_stage("grid_reduce", tag, with_flops=True)
        # scatter the reduced row blocks back onto the machine-wide BLOCK
        q_full = np.concatenate(partial_rows)[: self.n]
        for r in range(self.machine.nprocs):
            q_out.local(r)[:] = q_full[self._dist.local_indices_cached(r)]

    def apply_transpose(self, x, y, tag: str = "matvec_T") -> None:
        """Checkerboard is symmetric under transposition: same cost shape."""
        self._check_vectors(x, y)
        self._charge_subgroup_stage("grid_bcast", tag, with_flops=False)
        x_full = x.to_global()
        partial_cols = [np.zeros(0)] * self.q
        for gj in range(self.q):
            clo, chi = self._grid_block.local_range(gj)
            acc = np.zeros(chi - clo)
            for gi in range(self.q):
                rlo, rhi = self._grid_block.local_range(gi)
                block = self._blocks[(gi, gj)]
                acc += block.T @ x_full[rlo:rhi]
                self.machine.charge_compute(gi * self.q + gj, 2.0 * block.size)
            partial_cols[gj] = acc
        self._charge_subgroup_stage("grid_reduce", tag, with_flops=True)
        y_full = np.concatenate(partial_cols)[: self.n]
        for r in range(self.machine.nprocs):
            y.local(r)[:] = y_full[self._dist.local_indices_cached(r)]

    def comm_words_received_per_rank(self) -> float:
        """Words each rank receives per apply: ``2 n / q = 2 n / sqrt(P)``.

        One vector block down the column broadcast, one partial block in
        the row reduction -- versus the ~``n`` words every rank receives
        under the 1-D stripe allgather.
        """
        if self.q == 1:
            return 0.0
        return 2.0 * float(self._grid_block.max_local_count())

    def storage_words_per_rank(self) -> np.ndarray:
        out = np.zeros(self.machine.nprocs)
        for (gi, gj), block in self._blocks.items():
            out[gi * self.q + gj] = block.size
        return out
