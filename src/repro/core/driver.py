"""Shared scaffolding for the distributed solvers.

Handles what every HPF solver does identically: allocate the aligned
vector set from the strategy's required distribution (the ``ALIGN (:) WITH
p(:) :: q, r, x`` of Figure 2), compute the initial residual, snapshot the
machine counters, and assemble the :class:`SolveResult` with per-solve
communication/compute deltas and load-balance diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..hpf.array import DistributedArray
from .matvec import MatvecStrategy
from .result import ConvergenceHistory, SolveResult
from .stopping import StoppingCriterion

__all__ = [
    "SolveContext",
    "start_solve",
    "finish_solve",
    "assemble_backend_result",
]


@dataclass
class SolveContext:
    """Per-solve bookkeeping shared by the solver drivers."""

    strategy: MatvecStrategy
    criterion: StoppingCriterion
    b: DistributedArray
    x: DistributedArray
    r: DistributedArray
    bnorm: float
    history: ConvergenceHistory
    _stats_before: object
    _clock_before: float
    _flops_before: np.ndarray

    @property
    def machine(self):
        return self.strategy.machine

    def new_vector(self, name: str) -> DistributedArray:
        v = self.strategy.make_vector(name)
        v.align_with(self.b)
        return v

    def stop(self, rnorm: float) -> bool:
        return self.criterion.satisfied(rnorm, self.bnorm)

    @property
    def maxiter(self) -> int:
        return self.criterion.cap(self.strategy.n)


def start_solve(
    strategy: MatvecStrategy,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveContext:
    """Allocate aligned vectors, form ``r = b - A x0``, snapshot counters."""
    machine = strategy.machine
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (strategy.n,):
        raise ValueError(f"b must have shape ({strategy.n},), got {b.shape}")
    crit = criterion or StoppingCriterion()

    stats_before = machine.stats.snapshot()
    clock_before = machine.elapsed()
    flops_before = machine.stats.flops_per_rank.copy()

    b_d = strategy.make_vector("b", b)
    x = strategy.make_vector("x", x0 if x0 is not None else None)
    x.align_with(b_d)
    r = strategy.make_vector("r")
    r.align_with(b_d)

    bnorm = b_d.norm2(tag="setup")
    if x0 is None:
        r.assign(b_d)  # r = b for the zero initial guess
    else:
        strategy.apply(x, r, tag="setup")  # r <- A x0
        r.scale(-1.0)
        r.iadd(b_d)

    history = ConvergenceHistory()
    return SolveContext(
        strategy=strategy,
        criterion=crit,
        b=b_d,
        x=x,
        r=r,
        bnorm=bnorm,
        history=history,
        _stats_before=stats_before,
        _clock_before=clock_before,
        _flops_before=flops_before,
    )


def finish_solve(
    ctx: SolveContext,
    solver: str,
    converged: bool,
    iterations: int,
    extras: Optional[Dict[str, object]] = None,
) -> SolveResult:
    """Assemble the result with machine deltas for this solve."""
    machine = ctx.machine
    delta = ctx._stats_before.since(machine.stats)
    flops = machine.stats.flops_per_rank - ctx._flops_before
    mean_flops = flops.mean() if flops.size else 0.0
    comm = {
        "messages": delta.messages,
        "words": delta.words,
        "comm_time": delta.comm_time,
        "flops": delta.flops,
    }
    all_extras: Dict[str, object] = {
        "flops_per_rank": flops,
        "load_imbalance": float(flops.max() / mean_flops) if mean_flops else 1.0,
        "nprocs": machine.nprocs,
        "topology": machine.topology.name,
    }
    if extras:
        all_extras.update(extras)
    return SolveResult(
        x=ctx.x.to_global(),
        converged=converged,
        iterations=iterations,
        history=ctx.history,
        solver=solver,
        strategy=ctx.strategy.name,
        machine_elapsed=machine.elapsed() - ctx._clock_before,
        comm=comm,
        extras=all_extras,
    )


def assemble_backend_result(run, solver: str, n: int) -> SolveResult:
    """Build a :class:`SolveResult` from an execution-backend run.

    ``run`` is a :class:`~repro.backend.base.BackendRun` whose per-rank
    results follow the row-block solver convention
    ``(x_block, residuals, converged, iterations)``.  ``machine_elapsed``
    is simulated time for the simulated backend and measured wall-clock
    time for the process backend; ``extras["backend"]`` says which.
    """
    x = np.concatenate([res[0] for res in run.results])[:n]
    residuals, converged, iterations = (
        run.results[0][1],
        run.results[0][2],
        run.results[0][3],
    )
    history = ConvergenceHistory()
    for rnorm in residuals:
        history.append(rnorm)
    flops = run.stats.flops_per_rank
    mean_flops = flops.mean() if flops.size else 0.0
    return SolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        history=history,
        solver=solver,
        strategy="spmd_message_passing",
        machine_elapsed=run.elapsed,
        comm={
            "messages": run.stats.total_messages,
            "words": run.stats.total_words,
            "comm_time": run.stats.comm_time,
            "flops": run.stats.total_flops,
        },
        extras={
            "backend": run.backend,
            "nprocs": run.nprocs,
            "timings": dict(run.timings),
            "per_rank": [dict(p) for p in run.per_rank],
            "flops_per_rank": flops,
            "load_imbalance": float(flops.max() / mean_flops) if mean_flops else 1.0,
        },
    )
