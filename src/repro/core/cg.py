"""Distributed CG: the paper's Figure-2 loop on the HPF runtime.

The iteration body maps one-to-one onto the figure::

    rho0 = rho
    rho  = DOT_PRODUCT(r, r)        ! sdot     -> r.dot(r) + allreduce
    beta = rho / rho0
    p    = beta * p + r             ! saypx    -> p.saypx(beta, r)
    q    = A . p                    ! sparse mat-vect -> strategy.apply
    alpha = rho / DOT_PRODUCT(p, q)
    x    = x + alpha * p            ! saxpy
    r    = r - alpha * q            ! saxpy
    IF ( stop_criterion ) EXIT

Any :class:`~repro.core.matvec.MatvecStrategy` supplies the ``q = A p``
step, so a single driver exercises every data-layout scenario of the
paper.

With ``faults``/``resilience`` set, the loop gains the checkpoint /
sanity-audit / rollback machinery of :mod:`repro.core.resilience` (the
HPF runtime has no message channel, so the injectable faults are the
plan's silent state corruptions).  Both default to off, leaving the
fault-free path untouched.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..machine.faults import FaultPlan
from .driver import finish_solve, start_solve
from .matvec import MatvecStrategy
from .resilience import ResilienceConfig, ResilienceGuard
from .result import SolveResult
from .stopping import StoppingCriterion

__all__ = ["hpf_cg"]


def hpf_cg(
    strategy: MatvecStrategy,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
    faults: Optional[FaultPlan] = None,
    resilience: Optional[ResilienceConfig] = None,
) -> SolveResult:
    """Solve ``A x = b`` with distributed CG under the given strategy."""
    ctx = start_solve(strategy, b, x0, criterion)
    p = ctx.new_vector("p")
    q = ctx.new_vector("q")
    p.assign(ctx.r)

    rho = ctx.r.dot(ctx.r)
    ctx.history.append(np.sqrt(max(0.0, rho)))
    if ctx.stop(ctx.history.final):
        return finish_solve(ctx, "cg", True, 0)

    guard = None
    if resilience is not None or (faults is not None and faults.enabled):
        guard = ResilienceGuard(ctx, resilience, faults, tracked={"p": p})
        guard.save_initial({"rho": rho, "rho0": rho})

    converged = False
    iterations = 0
    k = 0
    rho0 = rho
    refreshed = False
    while k < ctx.maxiter:
        k += 1
        if k > 1 and not refreshed:
            beta = rho / rho0
            p.saypx(beta, ctx.r)  # p = beta*p + r
        refreshed = False
        strategy.apply(p, q)  # q = A p
        pq = p.dot(q)
        if pq == 0.0:
            break
        alpha = rho / pq
        ctx.x.axpy(alpha, p)  # x = x + alpha p
        ctx.r.axpy(-alpha, q)  # r = r - alpha q
        if guard is not None:
            guard.inject(k)
        rho0 = rho
        rho = ctx.r.dot(ctx.r)  # the figure's top-of-loop sdot
        rnorm = float(np.sqrt(max(0.0, rho)))
        ctx.history.append(rnorm)
        iterations = k
        stopping = ctx.stop(rnorm)
        if guard is not None:
            k, scalars, action = guard.after_iteration(
                k, rnorm, stopping, {"rho": rho, "rho0": rho0}
            )
            if action == "rollback":
                rho, rho0 = scalars["rho"], scalars["rho0"]
                iterations = k
                continue
            if action == "refresh":
                # flush a possibly-corrupted search direction: plain restart
                p.assign(ctx.r)
                refreshed = True
        if stopping:
            converged = True
            break
    extras = {"resilience": guard.overhead()} if guard is not None else None
    return finish_solve(ctx, "cg", converged, iterations, extras=extras)
