"""Distributed CG: the paper's Figure-2 loop on the HPF runtime.

The iteration body maps one-to-one onto the figure::

    rho0 = rho
    rho  = DOT_PRODUCT(r, r)        ! sdot     -> r.dot(r) + allreduce
    beta = rho / rho0
    p    = beta * p + r             ! saypx    -> p.saypx(beta, r)
    q    = A . p                    ! sparse mat-vect -> strategy.apply
    alpha = rho / DOT_PRODUCT(p, q)
    x    = x + alpha * p            ! saxpy
    r    = r - alpha * q            ! saxpy
    IF ( stop_criterion ) EXIT

Any :class:`~repro.core.matvec.MatvecStrategy` supplies the ``q = A p``
step, so a single driver exercises every data-layout scenario of the
paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .driver import finish_solve, start_solve
from .matvec import MatvecStrategy
from .result import SolveResult
from .stopping import StoppingCriterion

__all__ = ["hpf_cg"]


def hpf_cg(
    strategy: MatvecStrategy,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Solve ``A x = b`` with distributed CG under the given strategy."""
    ctx = start_solve(strategy, b, x0, criterion)
    p = ctx.new_vector("p")
    q = ctx.new_vector("q")
    p.assign(ctx.r)

    rho = ctx.r.dot(ctx.r)
    ctx.history.append(np.sqrt(max(0.0, rho)))
    if ctx.stop(ctx.history.final):
        return finish_solve(ctx, "cg", True, 0)

    converged = False
    iterations = 0
    for k in range(1, ctx.maxiter + 1):
        if k > 1:
            beta = rho / rho0
            p.saypx(beta, ctx.r)  # p = beta*p + r
        strategy.apply(p, q)  # q = A p
        pq = p.dot(q)
        if pq == 0.0:
            break
        alpha = rho / pq
        ctx.x.axpy(alpha, p)  # x = x + alpha p
        ctx.r.axpy(-alpha, q)  # r = r - alpha q
        rho0 = rho
        rho = ctx.r.dot(ctx.r)  # the figure's top-of-loop sdot
        rnorm = float(np.sqrt(max(0.0, rho)))
        ctx.history.append(rnorm)
        iterations = k
        if ctx.stop(rnorm):
            converged = True
            break
    return finish_solve(ctx, "cg", converged, iterations)
