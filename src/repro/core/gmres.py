"""Restarted GMRES -- the paper's 'longer recurrences' contrast.

"More complex algorithms such as GMRES make use of longer recurrences
(which require greater storage)."  (Section 2.1.)  This module implements
restarted GMRES(m) to make that storage contrast measurable: unlike CG's
four vectors, GMRES holds an ``m+1``-vector Krylov basis, and the
distributed version charges that storage to the machine so benchmarks can
put a number on the paper's parenthetical.

Both versions use Arnoldi with modified Gram--Schmidt and Givens rotations
on the Hessenberg matrix.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .driver import finish_solve, start_solve
from .matvec import MatvecStrategy
from .reference import _prep
from .result import ConvergenceHistory, SolveResult
from .stopping import StoppingCriterion

__all__ = ["gmres_reference", "hpf_gmres"]


def _apply_givens(h, cs, sn, k):
    """Apply stored rotations to column k of H, then create rotation k."""
    for i in range(k):
        temp = cs[i] * h[i] + sn[i] * h[i + 1]
        h[i + 1] = -sn[i] * h[i] + cs[i] * h[i + 1]
        h[i] = temp
    denom = np.hypot(h[k], h[k + 1])
    if denom == 0.0:
        cs_k, sn_k = 1.0, 0.0
    else:
        cs_k, sn_k = h[k] / denom, h[k + 1] / denom
    h[k] = cs_k * h[k] + sn_k * h[k + 1]
    h[k + 1] = 0.0
    return cs_k, sn_k


def gmres_reference(
    matrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    restart: int = 30,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Sequential restarted GMRES(restart)."""
    A, b, x = _prep(matrix, b, x0)
    n = A.nrows
    crit = criterion or StoppingCriterion()
    m = min(restart, n)
    bnorm = float(np.linalg.norm(b))
    history = ConvergenceHistory()

    r = b - A.matvec(x)
    beta = float(np.linalg.norm(r))
    history.append(beta)
    if crit.satisfied(beta, bnorm):
        return SolveResult(x, True, 0, history, "gmres")

    total_iters = 0
    converged = False
    maxiter = crit.cap(n)
    while total_iters < maxiter and not converged:
        # Arnoldi from the current residual
        V = np.zeros((m + 1, n))
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        r = b - A.matvec(x)
        beta = float(np.linalg.norm(r))
        if beta == 0.0:
            converged = True
            break
        V[0] = r / beta
        g[0] = beta
        k_done = 0
        for k in range(m):
            w = A.matvec(V[k])
            for i in range(k + 1):  # modified Gram-Schmidt
                H[i, k] = float(w @ V[i])
                w -= H[i, k] * V[i]
            subdiag = float(np.linalg.norm(w))
            H[k + 1, k] = subdiag
            if subdiag > 1e-14:
                V[k + 1] = w / subdiag
            # note: the rotation zeroes H[k+1, k] in place, so the
            # breakdown test below must use the saved subdiagonal
            cs[k], sn[k] = _apply_givens(H[:, k], cs, sn, k)
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            total_iters += 1
            k_done = k + 1
            history.append(abs(float(g[k + 1])))
            if crit.satisfied(abs(float(g[k + 1])), bnorm) or total_iters >= maxiter:
                converged = crit.satisfied(abs(float(g[k + 1])), bnorm)
                break
            if subdiag <= 1e-14:
                converged = True  # invariant subspace: solution is exact
                break
        # solve the small triangular system and update x
        y = np.linalg.solve(H[:k_done, :k_done], g[:k_done]) if k_done else []
        for i in range(k_done):
            x += y[i] * V[i]
    final = float(np.linalg.norm(b - A.matvec(x)))
    history.residual_norms[-1] = final
    converged = crit.satisfied(final, bnorm)
    return SolveResult(
        x, converged, total_iters, history, "gmres",
        extras={"restart": m, "basis_vectors": m + 1},
    )


def hpf_gmres(
    strategy: MatvecStrategy,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    restart: int = 30,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Distributed restarted GMRES(restart).

    The Krylov basis is ``restart + 1`` distributed vectors, charged as
    storage to every rank -- the measurable form of the paper's "longer
    recurrences (which require greater storage)".  Each Arnoldi step costs
    one mat-vec plus ``k+1`` distributed inner products (so the allreduce
    pressure grows with the restart length).
    """
    ctx = start_solve(strategy, b, x0, criterion)
    machine = ctx.machine
    n = strategy.n
    m = min(restart, n)
    maxiter = ctx.maxiter

    beta = ctx.r.norm2()
    ctx.history.append(beta)
    if ctx.stop(beta):
        return finish_solve(ctx, "gmres", True, 0,
                            extras={"restart": m, "basis_vectors": m + 1})

    # the Krylov basis: m+1 aligned distributed vectors (the storage bill)
    basis: List = [ctx.new_vector(f"v{i}") for i in range(m + 1)]
    w = ctx.new_vector("w")

    total_iters = 0
    converged = False
    while total_iters < maxiter and not converged:
        strategy.apply(ctx.x, w, tag="matvec")
        ctx.r.assign(ctx.b)
        ctx.r.axpy(-1.0, w)
        beta = ctx.r.norm2()
        if beta == 0.0:
            converged = True
            break
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        basis[0].assign(ctx.r)
        basis[0].scale(1.0 / beta)
        g[0] = beta
        k_done = 0
        for k in range(m):
            strategy.apply(basis[k], w, tag="matvec")
            for i in range(k + 1):
                H[i, k] = w.dot(basis[i])  # k+1 allreduce merges
                w.axpy(-H[i, k], basis[i])
            subdiag = w.norm2()
            H[k + 1, k] = subdiag
            if subdiag > 1e-14:
                basis[k + 1].assign(w)
                basis[k + 1].scale(1.0 / subdiag)
            cs[k], sn[k] = _apply_givens(H[:, k], cs, sn, k)
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            total_iters += 1
            k_done = k + 1
            ctx.history.append(abs(float(g[k + 1])))
            if ctx.stop(abs(float(g[k + 1]))) or total_iters >= maxiter:
                converged = ctx.stop(abs(float(g[k + 1])))
                break
            if subdiag <= 1e-14:
                converged = True
                break
        if k_done:
            y = np.linalg.solve(H[:k_done, :k_done], g[:k_done])
            for i in range(k_done):
                ctx.x.axpy(float(y[i]), basis[i])
    strategy.apply(ctx.x, w, tag="matvec")
    ctx.r.assign(ctx.b)
    ctx.r.axpy(-1.0, w)
    final = ctx.r.norm2()
    ctx.history.residual_norms[-1] = final
    converged = ctx.stop(final)
    return finish_solve(
        ctx, "gmres", converged, total_iters,
        extras={
            "restart": m,
            "basis_vectors": m + 1,
            "basis_storage_words_per_rank": float(
                (m + 1) * max(1, -(-n // machine.nprocs))
            ),
        },
    )
