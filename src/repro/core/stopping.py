"""Stopping criteria for the iterative solvers.

The paper's loop reads ``IF ( stop_criterion ) EXIT``; the conventional
criterion (and the one the Templates book [2] recommends) is a relative
residual test ``||r|| <= rtol * ||b|| + atol`` plus an iteration cap.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StoppingCriterion"]


@dataclass(frozen=True)
class StoppingCriterion:
    """Relative/absolute residual test with an iteration cap.

    Parameters
    ----------
    rtol:
        Relative tolerance against the right-hand-side norm.
    atol:
        Absolute residual floor.
    maxiter:
        Iteration cap (``None`` -> ``10 * n`` chosen by the solver).
    """

    rtol: float = 1e-8
    atol: float = 0.0
    maxiter: int = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.rtol < 0 or self.atol < 0:
            raise ValueError("tolerances must be non-negative")
        if self.maxiter is not None and self.maxiter < 1:
            raise ValueError("maxiter must be >= 1")

    def threshold(self, bnorm: float) -> float:
        """The residual norm below which the solve is converged."""
        return self.rtol * bnorm + self.atol

    def satisfied(self, rnorm: float, bnorm: float) -> bool:
        return rnorm <= self.threshold(bnorm)

    def cap(self, n: int) -> int:
        """Effective iteration cap for an ``n``-dimensional system."""
        return self.maxiter if self.maxiter is not None else max(10 * n, 100)
