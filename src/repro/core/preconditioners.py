"""Preconditioners for the CG family (paper Section 2.1).

"A preconditioner for A can be added to any of the algorithms described
above and which will increase the speed of convergence of the CG algorithm.
Although these preconditioned conjugate gradient algorithms requires a
matrix inverse, and a transpose, practical implementations is formulated
such that it works with the original matrix A."

Each preconditioner exposes ``solve(r) -> z`` (apply ``M^{-1}``) plus the
cost metadata the distributed PCG uses to charge the machine:

* ``parallel`` -- whether the apply is embarrassingly local under an
  aligned distribution (Jacobi, Neumann) or inherently serialised
  (SSOR's triangular sweeps);
* ``flops_per_apply`` -- arithmetic cost of one apply.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..sparse.convert import as_matrix

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "SSORPreconditioner",
    "NeumannPreconditioner",
]


class Preconditioner(ABC):
    """Apply ``z = M^{-1} r`` with known cost structure."""

    #: True when the apply is purely element-local under owner-computes
    parallel: bool = True

    @abstractmethod
    def solve(self, r: np.ndarray) -> np.ndarray:
        """Return ``M^{-1} r``."""

    @property
    @abstractmethod
    def flops_per_apply(self) -> float:
        """Arithmetic operations per apply."""

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Preconditioner", "").lower() or "identity"


class IdentityPreconditioner(Preconditioner):
    """No preconditioning: ``M = I``."""

    def __init__(self, n: int):
        self.n = int(n)

    def solve(self, r: np.ndarray) -> np.ndarray:
        return r.copy()

    @property
    def flops_per_apply(self) -> float:
        return 0.0


class JacobiPreconditioner(Preconditioner):
    """Diagonal scaling ``M = diag(A)`` -- fully parallel, one divide each."""

    def __init__(self, matrix):
        A = as_matrix(matrix)
        d = A.diagonal()
        if (d == 0).any():
            raise ValueError("Jacobi preconditioner needs a zero-free diagonal")
        self.inv_diag = 1.0 / d

    def solve(self, r: np.ndarray) -> np.ndarray:
        return r * self.inv_diag

    @property
    def flops_per_apply(self) -> float:
        return float(self.inv_diag.size)


class SSORPreconditioner(Preconditioner):
    """Symmetric SOR preconditioner.

    ``M = (D/w + L) * (w/(2-w)) * D^{-1} * (D/w + U)`` for ``A = L + D + U``.
    The two triangular sweeps are recurrences along the unknown index, so
    the apply is *serial* -- the distributed PCG charges it as serialised
    work, exhibiting the parallelism-vs-convergence trade-off.
    """

    parallel = False

    def __init__(self, matrix, omega: float = 1.0):
        if not 0.0 < omega < 2.0:
            raise ValueError("SSOR requires 0 < omega < 2")
        import scipy.sparse as sp

        A = as_matrix(matrix).to_scipy().tocsr()
        d = A.diagonal()
        if (d == 0).any():
            raise ValueError("SSOR preconditioner needs a zero-free diagonal")
        self.omega = float(omega)
        n = A.shape[0]
        D = sp.diags(d)
        L = sp.tril(A, k=-1)
        U = sp.triu(A, k=1)
        self._lower = (D / omega + L).tocsr()  # forward sweep operator
        self._upper = (D / omega + U).tocsr()  # backward sweep operator
        self._d_scale = d * ((2.0 - omega) / omega)
        self._nnz = A.nnz
        self._n = n

    def solve(self, r: np.ndarray) -> np.ndarray:
        from scipy.sparse.linalg import spsolve_triangular

        y = spsolve_triangular(self._lower, r, lower=True)
        y = y * self._d_scale
        return spsolve_triangular(self._upper, y, lower=False)

    @property
    def flops_per_apply(self) -> float:
        # two triangular solves (~nnz multiply-adds each) plus the scaling
        return 2.0 * self._nnz + self._n


class NeumannPreconditioner(Preconditioner):
    """Truncated Neumann-series preconditioner (parallel-friendly).

    ``M^{-1} = sum_{i=0}^{order} (I - D^{-1} A)^i D^{-1}`` -- built from
    mat-vecs and diagonal scalings only, so unlike SSOR it parallelises
    under the same distributions as CG itself.
    """

    def __init__(self, matrix, order: int = 2):
        if order < 0:
            raise ValueError("order must be >= 0")
        self.A = as_matrix(matrix)
        d = self.A.diagonal()
        if (d == 0).any():
            raise ValueError("Neumann preconditioner needs a zero-free diagonal")
        self.inv_diag = 1.0 / d
        self.order = int(order)

    def solve(self, r: np.ndarray) -> np.ndarray:
        z = self.inv_diag * r
        acc = z.copy()
        for _ in range(self.order):
            z = z - self.inv_diag * self.A.matvec(z)
            acc += z
        return acc

    @property
    def flops_per_apply(self) -> float:
        n = self.inv_diag.size
        per_term = 2.0 * self.A.nnz + 3.0 * n
        return n + self.order * per_term
