"""Halo (shadow-region) mat-vec: the HPF-2 ``SHADOW`` optimisation.

The paper's Scenario-1 layouts replicate the *entire* vector ``p`` on every
processor each mat-vec ("an all-to-all broadcast of the local vector
elements"), because "a row can have a nonzero entry in any column".  For
the banded/stencil matrices of the paper's CFD and structural applications
that is far more data than needed: each rank's rows only reference a thin
boundary of neighbouring blocks.  HPF-2 later standardised exactly this
optimisation as the ``SHADOW`` directive (ghost cells).

:class:`CsrHalo` implements it on this runtime: at construction it
inspects the sparsity pattern, computes which remote ``p`` elements each
rank actually reads (the shadow region), and each apply exchanges only
those -- point-to-point messages between the communicating pairs instead
of a machine-wide broadcast.  Benchmark E17 measures the saving on stencil
matrices and its collapse on irregular ones (where the shadow region
approaches the whole vector, which is why the paper's Section 5.2
machinery is still needed).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..hpf.distribution import Block, Distribution
from .matvec import MatvecStrategy

__all__ = ["CsrHalo"]


class CsrHalo(MatvecStrategy):
    """Row-block CSR mat-vec with shadow-region exchange instead of broadcast.

    Elements are stored by whole-row atoms (as in ``csr_forall_aligned``),
    so the only communication is the halo: for each (reader, owner) rank
    pair, one message carrying the distinct remote ``p`` elements the
    reader's rows reference.
    """

    name = "csr_halo"

    def __init__(self, machine, matrix):
        super().__init__(machine, matrix)
        self.csr = self.matrix.to_csr()
        self._dist = Block(self.n, machine.nprocs)
        nprocs = machine.nprocs
        indptr, indices = self.csr.indptr, self.csr.indices
        #: forward halo: _recv_counts[dst][src] = words dst fetches from src
        self._recv_counts: List[Dict[int, int]] = [dict() for _ in range(nprocs)]
        self._local_nnz = np.zeros(nprocs, dtype=np.int64)
        for r in range(nprocs):
            lo, hi = self._dist.local_range(r)
            cols = indices[indptr[lo]:indptr[hi]]
            self._local_nnz[r] = cols.size
            if cols.size == 0:
                continue
            remote = np.unique(cols)
            remote = remote[(remote < lo) | (remote >= hi)]
            if remote.size == 0:
                continue
            owners = self._dist.owners(remote)
            for src, count in zip(*np.unique(owners, return_counts=True)):
                self._recv_counts[r][int(src)] = int(count)

    # ------------------------------------------------------------------ #
    def vector_distribution(self) -> Distribution:
        return self._dist

    def halo_words_total(self) -> float:
        """Words moved per apply (the broadcast moves ~n*(P-1)/P words)."""
        return float(
            sum(sum(c.values()) for c in self._recv_counts)
        )

    def halo_pairs(self) -> int:
        """Communicating (reader, owner) pairs per apply."""
        return sum(len(c) for c in self._recv_counts)

    def shadow_fraction(self) -> float:
        """Largest per-rank shadow size relative to the full vector."""
        if self.n == 0:
            return 0.0
        return max(
            (sum(c.values()) for c in self._recv_counts), default=0
        ) / float(self.n)

    def _charge_halo(self, counts: List[Dict[int, int]], tag: str) -> None:
        """Price one halo exchange: pairwise messages, receivers in parallel."""
        cost = self.machine.cost
        messages = 0
        words = 0.0
        per_rank_time = np.zeros(self.machine.nprocs)
        for dst, sources in enumerate(counts):
            for src, cnt in sources.items():
                hops = max(1, self.machine.topology.hops(src, dst))
                per_rank_time[dst] += cost.message_time(cnt, hops)
                messages += 1
                words += cnt
        if messages == 0:
            return
        time = float(per_rank_time.max())
        participants = [dst for dst, srcs in enumerate(counts) if srcs]
        self.machine.charge_comm_interval(
            "halo", messages, words, time, tag, participants=participants
        )

    # ------------------------------------------------------------------ #
    def apply(self, p, q, tag: str = "matvec") -> None:
        self._check_vectors(p, q)
        self._charge_halo(self._recv_counts, tag)
        p_full = p.to_global()  # locals + freshly exchanged shadow
        indptr, indices, data = self.csr.indptr, self.csr.indices, self.csr.data
        for r in range(self.machine.nprocs):
            lo, hi = self._dist.local_range(r)
            seg = slice(indptr[lo], indptr[hi])
            rows = (
                np.repeat(
                    np.arange(lo, hi, dtype=np.int64), np.diff(indptr[lo:hi + 1])
                )
                - lo
            )
            local_q = np.zeros(hi - lo)
            np.add.at(local_q, rows, data[seg] * p_full[indices[seg]])
            q.local(r)[:] = local_q
            self.machine.charge_compute(r, 2.0 * float(self._local_nnz[r]))

    def apply_transpose(self, x, y, tag: str = "matvec_T") -> None:
        """Reverse halo: partial sums for remote columns go back to owners."""
        self._check_vectors(x, y)
        # the reverse exchange has the same pair structure with src/dst
        # swapped and identical counts
        reverse: List[Dict[int, int]] = [dict() for _ in range(self.machine.nprocs)]
        for dst, sources in enumerate(self._recv_counts):
            for src, cnt in sources.items():
                reverse[src][dst] = cnt
        self._charge_halo(reverse, tag)
        indptr, indices, data = self.csr.indptr, self.csr.indices, self.csr.data
        x_full = x.to_global()
        total = np.zeros(self.n)
        rows = self.csr.expanded_rows()
        np.add.at(total, indices, data * x_full[rows])
        for r in range(self.machine.nprocs):
            y.local(r)[:] = total[self._dist.local_indices_cached(r)]
            lo, hi = self._dist.local_range(r)
            self.machine.charge_compute(r, 2.0 * float(self._local_nnz[r]))

    def storage_words_per_rank(self) -> np.ndarray:
        out = np.zeros(self.machine.nprocs)
        for r in range(self.machine.nprocs):
            lo, hi = self._dist.local_range(r)
            out[r] = (
                2.0 * self._local_nnz[r]
                + (hi - lo + 1)
                + sum(self._recv_counts[r].values())  # the shadow buffer
            )
        return out
