"""Distributed Conjugate Gradient Squared (paper Section 2.1).

"The Conjugate Gradient Squared (CGS) algorithm avoids using A^T
operations but also requires additional vectors of storage over the basic
CG.  CGS can be built using the operations and data distributions we
describe here, but can have some undesirable numerical properties such as
actual divergence or irregular rates of convergence."

Both mat-vecs are forward products, so CGS keeps whatever layout
optimisation the strategy provides -- at the price of the extra vectors
and CGS's erratic convergence (visible in benchmark E13's histories).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .driver import finish_solve, start_solve
from .matvec import MatvecStrategy
from .result import SolveResult
from .stopping import StoppingCriterion

__all__ = ["hpf_cgs"]


def hpf_cgs(
    strategy: MatvecStrategy,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Solve ``A x = b`` with distributed CGS (no transpose products)."""
    ctx = start_solve(strategy, b, x0, criterion)
    rnorm = ctx.r.norm2()
    ctx.history.append(rnorm)
    if ctx.stop(rnorm):
        return finish_solve(ctx, "cgs", True, 0)

    rt = ctx.new_vector("rt")
    rt.assign(ctx.r)
    p = ctx.new_vector("p")
    u = ctx.new_vector("u")
    qv = ctx.new_vector("q")
    v = ctx.new_vector("v")
    w = ctx.new_vector("w")

    rho = 1.0
    converged = False
    iterations = 0
    for k in range(1, ctx.maxiter + 1):
        rho0 = rho
        rho = rt.dot(ctx.r)
        if rho == 0.0:
            break
        if k == 1:
            u.assign(ctx.r)
            p.assign(u)
        else:
            beta = rho / rho0
            # u = r + beta q
            u.assign(ctx.r)
            u.axpy(beta, qv)
            # p = u + beta (q + beta p)
            p.scale(beta)
            p.iadd(qv)
            p.scale(beta)
            p.iadd(u)
        strategy.apply(p, v)  # v = A p
        rtv = rt.dot(v)
        if rtv == 0.0:
            break
        alpha = rho / rtv
        # q = u - alpha v
        qv.assign(u)
        qv.axpy(-alpha, v)
        # w = u + q ; x += alpha w ; r -= alpha A w
        w.assign(u)
        w.iadd(qv)
        ctx.x.axpy(alpha, w)
        strategy.apply(w, v)  # v = A (u + q), the second forward mat-vec
        ctx.r.axpy(-alpha, v)
        rnorm = ctx.r.norm2()
        ctx.history.append(rnorm)
        iterations = k
        if ctx.stop(rnorm):
            converged = True
            break
    return finish_solve(ctx, "cgs", converged, iterations)
