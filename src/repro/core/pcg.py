"""Distributed preconditioned CG.

Preconditioner application is charged according to its parallel structure:

* parallel preconditioners (Jacobi, Neumann) apply locally under the same
  distribution as the vectors -- work divides by ``N_P``;
* serial preconditioners (SSOR's triangular recurrences) are charged as
  serialised work plus a gather/scatter of the residual, exposing the
  classic trade-off: fewer iterations, but a sequential bottleneck each
  iteration.

``faults``/``resilience`` enable the checkpoint / sanity-audit / rollback
machinery of :mod:`repro.core.resilience`, as in :func:`~repro.core.cg.hpf_cg`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hpf.array import DistributedArray
from ..machine.faults import FaultPlan
from .driver import finish_solve, start_solve
from .matvec import MatvecStrategy
from .preconditioners import Preconditioner
from .resilience import ResilienceConfig, ResilienceGuard
from .result import SolveResult
from .stopping import StoppingCriterion

__all__ = ["hpf_pcg"]


def _apply_preconditioner(
    precond: Preconditioner,
    r: DistributedArray,
    z: DistributedArray,
    tag: str = "precond",
) -> None:
    """``z = M^{-1} r`` with cost charging per the preconditioner's nature."""
    machine = r.machine
    n = r.n
    z_global = precond.solve(r.to_global())
    if precond.parallel:
        counts = r.distribution.counts().astype(float)
        share = counts / max(1, n)
        for rank in range(machine.nprocs):
            machine.charge_compute(rank, precond.flops_per_apply * share[rank])
    else:
        # gather r to one rank, run the recurrence serially, scatter z
        machine.gather(float(r.distribution.max_local_count()), tag=tag)
        flops = np.zeros(machine.nprocs)
        flops[0] = precond.flops_per_apply
        machine.charge_serialized_compute(flops)
        machine.scatter(float(r.distribution.max_local_count()), tag=tag)
    for rank in range(machine.nprocs):
        z.local(rank)[:] = z_global[z.distribution.local_indices(rank)]


def hpf_pcg(
    strategy: MatvecStrategy,
    b: np.ndarray,
    preconditioner: Preconditioner,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
    faults: Optional[FaultPlan] = None,
    resilience: Optional[ResilienceConfig] = None,
) -> SolveResult:
    """Solve ``A x = b`` with distributed preconditioned CG."""
    ctx = start_solve(strategy, b, x0, criterion)
    rnorm = ctx.r.norm2()
    ctx.history.append(rnorm)
    if ctx.stop(rnorm):
        return finish_solve(
            ctx, "pcg", True, 0, extras={"preconditioner": preconditioner.name}
        )

    z = ctx.new_vector("z")
    p = ctx.new_vector("p")
    q = ctx.new_vector("q")
    _apply_preconditioner(preconditioner, ctx.r, z)
    p.assign(z)
    rho = ctx.r.dot(z)

    guard = None
    if resilience is not None or (faults is not None and faults.enabled):
        guard = ResilienceGuard(ctx, resilience, faults, tracked={"p": p, "z": z})
        guard.save_initial({"rho": rho})

    converged = False
    iterations = 0
    k = 0
    while k < ctx.maxiter:
        k += 1
        strategy.apply(p, q)
        pq = p.dot(q)
        if pq == 0.0:
            break
        alpha = rho / pq
        ctx.x.axpy(alpha, p)
        ctx.r.axpy(-alpha, q)
        if guard is not None:
            guard.inject(k)
        rnorm = ctx.r.norm2()
        ctx.history.append(rnorm)
        iterations = k
        stopping = ctx.stop(rnorm)
        if guard is None and stopping:
            converged = True
            break
        if not stopping:
            _apply_preconditioner(preconditioner, ctx.r, z)
            rho0 = rho
            rho = ctx.r.dot(z)
            beta = rho / rho0
            p.saypx(beta, z)  # p = beta*p + z
        if guard is not None:
            # checkpoint after the end-of-body update so a rollback resumes
            # with a consistent (p, z, rho) triple
            k, scalars, action = guard.after_iteration(
                k, rnorm, stopping, {"rho": rho}
            )
            if action == "rollback":
                rho = scalars["rho"]
                iterations = k
                continue
            if action == "refresh":
                # flush a possibly-corrupted search direction: restart on z
                p.assign(z)
            if stopping:
                converged = True
                break
    extras = {"preconditioner": preconditioner.name}
    if guard is not None:
        extras["resilience"] = guard.overhead()
    return finish_solve(ctx, "pcg", converged, iterations, extras=extras)
