"""Solver results and convergence histories."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["ConvergenceHistory", "SolveResult"]


@dataclass
class ConvergenceHistory:
    """Residual norms per iteration (iteration 0 = initial residual)."""

    residual_norms: List[float] = field(default_factory=list)

    def append(self, rnorm: float) -> None:
        self.residual_norms.append(float(rnorm))

    @property
    def iterations(self) -> int:
        """Number of iterations performed (excluding the initial residual)."""
        return max(0, len(self.residual_norms) - 1)

    @property
    def final(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")

    @property
    def initial(self) -> float:
        return self.residual_norms[0] if self.residual_norms else float("nan")

    def reduction(self) -> float:
        """Final/initial residual ratio."""
        if not self.residual_norms or self.residual_norms[0] == 0:
            return 0.0
        return self.final / self.residual_norms[0]

    def convergence_rate(self) -> float:
        """Geometric mean per-iteration residual reduction factor."""
        if self.iterations < 1 or self.initial == 0 or self.final == 0:
            return float("nan")
        return float((self.final / self.initial) ** (1.0 / self.iterations))


@dataclass
class SolveResult:
    """Outcome of one linear solve.

    Attributes
    ----------
    x:
        Solution vector (global NumPy array).
    converged:
        Whether the stopping criterion was met within the iteration cap.
    iterations:
        Iterations performed.
    history:
        Residual-norm history.
    solver:
        Solver name (``"cg"``, ``"bicg"``, ...).
    strategy:
        Mat-vec strategy name for distributed solves, ``None`` for
        sequential references.
    machine_elapsed:
        Simulated parallel time consumed by the solve (seconds), when run
        on a machine.
    comm:
        Aggregated communication numbers for the solve (messages, words,
        time), when run on a machine.
    extras:
        Free-form diagnostics (per-phase timings, storage, flops...).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    history: ConvergenceHistory
    solver: str
    strategy: Optional[str] = None
    machine_elapsed: Optional[float] = None
    comm: Optional[Dict[str, float]] = None
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def final_residual(self) -> float:
        return self.history.final

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveResult(solver={self.solver!r}, strategy={self.strategy!r}, "
            f"converged={self.converged}, iterations={self.iterations}, "
            f"final_residual={self.final_residual:.3e})"
        )
