"""The CG solver family -- the paper's primary subject.

Sequential references (:mod:`~repro.core.reference`), distributed HPF
solvers (:func:`hpf_cg`, :func:`hpf_pcg`, :func:`hpf_bicg`,
:func:`hpf_cgs`, :func:`hpf_bicgstab`) parameterised by mat-vec strategy
(:mod:`~repro.core.matvec`), preconditioners, and stopping criteria.
"""

from .bicg import hpf_bicg
from .bicgstab import hpf_bicgstab
from .cg import hpf_cg
from .checkerboard import DenseCheckerboard
from .cgs import hpf_cgs
from .figure2 import figure2_cg
from .gmres import gmres_reference, hpf_gmres
from .halo import CsrHalo
from .kernels import saxpy, saypx, scopy, sdot, sscal
from .matvec import (
    ColBlockDenseSerial,
    ColBlockDenseTwoDimTemp,
    CscPrivateMerge,
    CscSerial,
    CsrForall,
    MatvecStrategy,
    RowBlockDense,
    make_strategy,
)
from .pcg import hpf_pcg
from .preconditioners import (
    IdentityPreconditioner,
    JacobiPreconditioner,
    NeumannPreconditioner,
    Preconditioner,
    SSORPreconditioner,
)
from .resilience import (
    RecoveryExhaustedError,
    ResilienceConfig,
    ResilienceGuard,
)
from .reference import (
    bicg_reference,
    bicgstab_reference,
    cg_reference,
    cgs_reference,
    gaussian_elimination,
    pcg_reference,
)
from .result import ConvergenceHistory, SolveResult
from .stopping import StoppingCriterion

__all__ = [
    "hpf_cg",
    "figure2_cg",
    "hpf_pcg",
    "hpf_bicg",
    "hpf_cgs",
    "hpf_gmres",
    "gmres_reference",
    "hpf_bicgstab",
    "MatvecStrategy",
    "RowBlockDense",
    "DenseCheckerboard",
    "ColBlockDenseSerial",
    "ColBlockDenseTwoDimTemp",
    "CsrForall",
    "CsrHalo",
    "CscSerial",
    "CscPrivateMerge",
    "make_strategy",
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "SSORPreconditioner",
    "NeumannPreconditioner",
    "cg_reference",
    "pcg_reference",
    "bicg_reference",
    "cgs_reference",
    "bicgstab_reference",
    "gaussian_elimination",
    "SolveResult",
    "ConvergenceHistory",
    "StoppingCriterion",
    "ResilienceConfig",
    "ResilienceGuard",
    "RecoveryExhaustedError",
    "saxpy",
    "saypx",
    "sdot",
    "scopy",
    "sscal",
]
