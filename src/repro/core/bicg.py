"""Distributed Bi-Conjugate Gradient (paper Section 2.1).

BiCG's structure mirrors CG but with a shadow residual system driven by
``A^T``: "BiCG does however require two matrix-vector multiply operations
one of which uses the matrix transpose A^T, and therefore any storage
distribution optimisations made on the basis of row access vs. column
access will be negated with the use of BiCG."  The strategy's
``apply_transpose`` carries that wrong-way cost; benchmark E13 measures
it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .driver import finish_solve, start_solve
from .matvec import MatvecStrategy
from .result import SolveResult
from .stopping import StoppingCriterion

__all__ = ["hpf_bicg"]


def hpf_bicg(
    strategy: MatvecStrategy,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Solve (possibly nonsymmetric) ``A x = b`` with distributed BiCG."""
    ctx = start_solve(strategy, b, x0, criterion)
    rnorm = ctx.r.norm2()
    ctx.history.append(rnorm)
    if ctx.stop(rnorm):
        return finish_solve(ctx, "bicg", True, 0)

    # the "three extra vectors" of Section 2.1: shadow residual + 2 directions
    rt = ctx.new_vector("rt")
    rt.assign(ctx.r)
    p = ctx.new_vector("p")
    pt = ctx.new_vector("pt")
    q = ctx.new_vector("q")
    qt = ctx.new_vector("qt")

    rho = 1.0
    converged = False
    iterations = 0
    for k in range(1, ctx.maxiter + 1):
        rho0 = rho
        rho = rt.dot(ctx.r)
        if rho == 0.0:
            break  # breakdown
        beta = 0.0 if k == 1 else rho / rho0
        if k == 1:
            p.assign(ctx.r)
            pt.assign(rt)
        else:
            p.saypx(beta, ctx.r)  # p  = r  + beta p
            pt.saypx(beta, rt)  # pt = rt + beta pt
        strategy.apply(p, q)  # q  = A p
        strategy.apply_transpose(pt, qt)  # qt = A^T pt
        ptq = pt.dot(q)
        if ptq == 0.0:
            break
        alpha = rho / ptq
        ctx.x.axpy(alpha, p)
        ctx.r.axpy(-alpha, q)
        rt.axpy(-alpha, qt)
        rnorm = ctx.r.norm2()
        ctx.history.append(rnorm)
        iterations = k
        if ctx.stop(rnorm):
            converged = True
            break
    return finish_solve(ctx, "bicg", converged, iterations)
