"""Distributed matrix-vector multiply strategies (paper Section 4 and 5).

Each strategy realises one of the paper's data-layout scenarios, performing
the *numerically real* computation on per-rank local data while charging
the simulated machine the communication an HPF compiler would emit:

========================  =============================================
Strategy                  Paper artifact
========================  =============================================
:class:`RowBlockDense`    Scenario 1 / Figure 3: ``A(BLOCK, *)`` aligned
                          with ``p(BLOCK)``; all-to-all broadcast of p.
:class:`ColBlockDenseSerial`
                          Scenario 2 / Figure 4, serial code: inter-
                          processor dependency forbids parallel
                          execution.
:class:`ColBlockDenseTwoDimTemp`
                          Scenario 2 with the two-dimensional local
                          temporary merged by the SUM intrinsic.
:class:`CsrForall`        Figure 2: CSR + FORALL over rows, with the
                          "additional communication ... to bring in
                          those missing elements" when col/a are not
                          aligned with the rows.
:class:`CscSerial`        Section 5.1's starting point: CSC scatter
                          loop that HPF-1 can only run serially.
:class:`CscPrivateMerge`  Section 5.1 / Figure 5: ON PROCESSOR mapping
                          plus PRIVATE(q) WITH MERGE(+); optionally the
                          Section 5.2.2 balanced atom partition.
========================  =============================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..extensions.on_processor import OnProcessor
from ..extensions.partitioners import cg_balanced_partitioner_1
from ..extensions.private import PrivateRegion
from ..extensions.sparse_directive import SparseMatrixBinding
from ..hpf.array import DistributedArray, DistributedDenseMatrix
from ..hpf.distribution import Block, Distribution, IrregularBlock
from ..hpf.errors import AlignmentError
from ..hpf.intrinsics import sum_private_copies
from ..sparse.convert import as_matrix
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix

__all__ = [
    "MatvecStrategy",
    "RowBlockDense",
    "ColBlockDenseSerial",
    "ColBlockDenseTwoDimTemp",
    "CsrForall",
    "CscSerial",
    "CscPrivateMerge",
    "make_strategy",
]


class MatvecStrategy(ABC):
    """Common interface of distributed ``q = A p`` implementations."""

    #: short identifier used in benchmark tables
    name: str = "abstract"

    def __init__(self, machine, matrix):
        self.machine = machine
        self.matrix = as_matrix(matrix)
        if self.matrix.nrows != self.matrix.ncols:
            raise ValueError("matvec strategies expect square matrices")
        self.n = self.matrix.nrows

    # ------------------------------------------------------------------ #
    @abstractmethod
    def vector_distribution(self) -> Distribution:
        """The distribution CG's vectors must use with this strategy."""

    @abstractmethod
    def apply(
        self, p: DistributedArray, q: DistributedArray, tag: str = "matvec"
    ) -> None:
        """Compute ``q = A p`` in place, charging the machine."""

    def apply_transpose(
        self, x: DistributedArray, y: DistributedArray, tag: str = "matvec_T"
    ) -> None:
        """Compute ``y = A^T x`` (needed by BiCG); optional."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the transpose product"
        )

    # ------------------------------------------------------------------ #
    def make_vector(
        self, name: str, values: Optional[np.ndarray] = None
    ) -> DistributedArray:
        """Allocate a vector with this strategy's required distribution."""
        dist = self.vector_distribution()
        if values is None:
            return DistributedArray(self.machine, self.n, dist, name=name)
        return DistributedArray.from_global(self.machine, values, dist, name=name)

    def _check_vectors(self, p: DistributedArray, q: DistributedArray) -> None:
        dist = self.vector_distribution()
        for v in (p, q):
            if v.n != self.n:
                raise AlignmentError(f"vector extent {v.n} != matrix order {self.n}")
            if not v.distribution.same_mapping(dist):
                raise AlignmentError(
                    f"vector {v.name!r} is not distributed as the strategy "
                    f"requires ({dist!r}); build vectors with make_vector()"
                )

    def storage_words_per_rank(self) -> np.ndarray:
        """Matrix (plus persistent temporary) words held on each rank."""
        return np.zeros(self.machine.nprocs)

    @property
    def description(self) -> str:
        return type(self).__doc__.splitlines()[0] if type(self).__doc__ else self.name


# ---------------------------------------------------------------------- #
# Scenario 1: dense, (BLOCK, *)
# ---------------------------------------------------------------------- #
class RowBlockDense(MatvecStrategy):
    """Scenario 1: dense A distributed (BLOCK, *), row-aligned with p.

    ``!HPF$ ALIGN A(:, *) WITH p(:)`` -- each rank owns a block of rows.
    Each apply pays the all-to-all broadcast of ``p`` ("this would require
    an all-to-all broadcast of the local vector elements"), then computes
    its rows locally; "no communication is needed to rearrange the
    distribution of the results".
    """

    name = "dense_rowblock"

    def __init__(self, machine, matrix):
        super().__init__(machine, matrix)
        self._dist = Block(self.n, machine.nprocs)
        self.A = DistributedDenseMatrix(
            machine, self.matrix.toarray(), self._dist, axis=0, name="A"
        )

    def vector_distribution(self) -> Distribution:
        return self._dist

    def apply(self, p: DistributedArray, q: DistributedArray, tag: str = "matvec") -> None:
        self._check_vectors(p, q)
        p_full = p.gather_to_all(tag=tag)  # the Scenario-1 broadcast
        for r in range(self.machine.nprocs):
            block = self.A.local_block(r)
            q.local(r)[:] = block @ p_full
            self.machine.charge_compute(r, 2.0 * block.size)

    def apply_transpose(
        self, x: DistributedArray, y: DistributedArray, tag: str = "matvec_T"
    ) -> None:
        """``y = A^T x``: local partial products merged by reduce-scatter.

        Row storage is "wrong-way" for the transpose: every rank produces a
        full-length partial vector that must be summed across ranks.
        """
        self._check_vectors(x, y)
        partials = []
        for r in range(self.machine.nprocs):
            block = self.A.local_block(r)
            partials.append(block.T @ x.local(r))
            self.machine.charge_compute(r, 2.0 * block.size)
        self.machine.charge_storage_all(float(self.n))  # transpose temporaries
        sum_private_copies(partials, y, tag=tag)

    def storage_words_per_rank(self) -> np.ndarray:
        return np.array(
            [self.A.local_block(r).size for r in range(self.machine.nprocs)],
            dtype=float,
        )


# ---------------------------------------------------------------------- #
# Scenario 2: dense, (*, BLOCK)
# ---------------------------------------------------------------------- #
class ColBlockDenseSerial(MatvecStrategy):
    """Scenario 2 (serial): dense A distributed (*, BLOCK), columns with p.

    ``!HPF$ ALIGN A(*, :) WITH p(:)``.  Element-wise multiplication is
    local, but the accumulations into ``q`` create "an inter-processor
    dependency.  Therefore the matrix-vector operation can not be performed
    in parallel and the following serial code is used" -- modelled as fully
    serialised compute plus per-column update messages to the owners of
    ``q``.
    """

    name = "dense_colblock_serial"

    def __init__(self, machine, matrix):
        super().__init__(machine, matrix)
        self._dist = Block(self.n, machine.nprocs)
        self.A = DistributedDenseMatrix(
            machine, self.matrix.toarray(), self._dist, axis=1, name="A"
        )

    def vector_distribution(self) -> Distribution:
        return self._dist

    def apply(self, p: DistributedArray, q: DistributedArray, tag: str = "matvec") -> None:
        self._check_vectors(p, q)
        nprocs = self.machine.nprocs
        # numerics: per-rank column-block contribution
        total = np.zeros(self.n)
        flops = np.zeros(nprocs)
        for r in range(nprocs):
            block = self.A.local_block(r)
            total += block @ p.local(r)
            flops[r] = 2.0 * block.size
        self.machine.charge_serialized_compute(flops)
        # per-column update messages to remote q owners, serialised
        if nprocs > 1:
            chunk = self._dist.max_local_count()
            messages = self.n * (nprocs - 1)
            words = float(messages * chunk)
            time = messages * self.machine.cost.message_time(chunk)
            self.machine.charge_comm_interval("p2p", messages, words, time, tag)
        for r in range(nprocs):
            q.local(r)[:] = total[self._dist.local_indices_cached(r)]

    def apply_transpose(
        self, x: DistributedArray, y: DistributedArray, tag: str = "matvec_T"
    ) -> None:
        """``y = A^T x`` under column storage is the *easy* direction:
        gather x, then every rank computes its columns' inner products."""
        self._check_vectors(x, y)
        x_full = x.gather_to_all(tag=tag)
        for r in range(self.machine.nprocs):
            block = self.A.local_block(r)
            y.local(r)[:] = block.T @ x_full
            self.machine.charge_compute(r, 2.0 * block.size)

    def storage_words_per_rank(self) -> np.ndarray:
        return np.array(
            [self.A.local_block(r).size for r in range(self.machine.nprocs)],
            dtype=float,
        )


class ColBlockDenseTwoDimTemp(MatvecStrategy):
    """Scenario 2 parallelised with a permanent two-dimensional temporary.

    "We could simulate the same thing using two dimensional temporary local
    vectors in place of vector q in each processor.  At the end of the
    outer loop we use the HPF SUM intrinsic to generate the final vector."
    Each rank keeps a full-length private partial permanently ("keeping
    large vectors in each processor's memory permanently is costly"), so
    the compute parallelises and the merge is one SUM reduction.
    """

    name = "dense_colblock_2dtemp"

    def __init__(self, machine, matrix):
        super().__init__(machine, matrix)
        self._dist = Block(self.n, machine.nprocs)
        self.A = DistributedDenseMatrix(
            machine, self.matrix.toarray(), self._dist, axis=1, name="A"
        )
        # the permanent 2-D temporary: one n-vector per processor
        machine.charge_storage_all(float(self.n))

    def vector_distribution(self) -> Distribution:
        return self._dist

    def apply(self, p: DistributedArray, q: DistributedArray, tag: str = "matvec") -> None:
        self._check_vectors(p, q)
        partials = []
        for r in range(self.machine.nprocs):
            block = self.A.local_block(r)
            partials.append(block @ p.local(r))
            self.machine.charge_compute(r, 2.0 * block.size)
        sum_private_copies(partials, q, tag=tag)

    apply_transpose = ColBlockDenseSerial.apply_transpose

    def storage_words_per_rank(self) -> np.ndarray:
        return np.array(
            [self.A.local_block(r).size + self.n for r in range(self.machine.nprocs)],
            dtype=float,
        )


# ---------------------------------------------------------------------- #
# Figure 2: CSR + FORALL
# ---------------------------------------------------------------------- #
class CsrForall(MatvecStrategy):
    """The Figure-2 HPF code: CSR trio with a FORALL over rows.

    ``row`` is distributed ``BLOCK((n+NP-1)/NP)`` (pointer fence on the
    last rank); ``col``/``a`` are ``BLOCK`` over the nonzero space, which
    generally does *not* match row ownership: "a processor that is
    responsible from a specific row may not have all the actual data
    elements (i.e., col and a) on that row.  Therefore, additional
    communication is needed to bring in those missing elements."

    With ``aligned=True`` the element arrays are redistributed by whole-row
    atoms (the Section 5.2.1 uniform atom distribution), eliminating that
    extra communication.
    """

    name = "csr_forall"

    def __init__(self, machine, matrix, aligned: bool = False):
        super().__init__(machine, matrix)
        self.csr: CSRMatrix = self.matrix.to_csr()
        self.binding = SparseMatrixBinding(machine, self.csr, name="smA")
        self.aligned = bool(aligned)
        if aligned:
            # initial layout choice, not runtime traffic
            self.binding.redistribute_atoms_uniform(charge=False)
            self.name = "csr_forall_aligned"
        self._dist = Block(self.n, machine.nprocs)
        self._row_ranges = [
            self._dist.local_range(r) for r in range(machine.nprocs)
        ]

    def vector_distribution(self) -> Distribution:
        return self._dist

    def _row_nnz(self, rank: int) -> int:
        lo, hi = self._row_ranges[rank]
        return int(self.csr.indptr[hi] - self.csr.indptr[lo])

    def apply(self, p: DistributedArray, q: DistributedArray, tag: str = "matvec") -> None:
        self._check_vectors(p, q)
        p_full = p.gather_to_all(tag=tag)  # same broadcast as Scenario 1
        self.binding.charge_prefetch(tag=tag)  # CSR's extra communication
        indptr, indices, data = self.csr.indptr, self.csr.indices, self.csr.data
        for r in range(self.machine.nprocs):
            lo, hi = self._row_ranges[r]
            seg = slice(indptr[lo], indptr[hi])
            contrib = data[seg] * p_full[indices[seg]]
            rows = (
                np.repeat(
                    np.arange(lo, hi, dtype=np.int64), np.diff(indptr[lo : hi + 1])
                )
                - lo
            )
            local_q = np.zeros(hi - lo)
            np.add.at(local_q, rows, contrib)
            q.local(r)[:] = local_q
            self.machine.charge_compute(r, 2.0 * contrib.size)

    def apply_transpose(
        self, x: DistributedArray, y: DistributedArray, tag: str = "matvec_T"
    ) -> None:
        """``y = A^T x``: the row layout's wrong-way product.

        Becomes a scatter through ``col`` -- the CSC-shaped loop -- so each
        rank accumulates into a private full-length vector that is merged,
        on top of the element prefetch.  This is the cost the paper warns
        about: "any storage distribution optimisations made on the basis of
        row access vs. column access will be negated with the use of BiCG."
        """
        self._check_vectors(x, y)
        self.binding.charge_prefetch(tag=tag)
        indptr, indices, data = self.csr.indptr, self.csr.indices, self.csr.data
        region = PrivateRegion(self.machine, self.n, merge="+")
        for r in range(self.machine.nprocs):
            lo, hi = self._row_ranges[r]
            seg = slice(indptr[lo], indptr[hi])
            rows = np.repeat(
                np.arange(lo, hi, dtype=np.int64), np.diff(indptr[lo : hi + 1])
            )
            contrib = data[seg] * x.local(r)[rows - lo]
            np.add.at(region.local(r), indices[seg], contrib)
            self.machine.charge_compute(r, 2.0 * contrib.size)
        region.merge_into(y, tag=tag)

    def nonlocal_element_words(self) -> float:
        """Words of col/a entries fetched per apply (0 when aligned)."""
        return float(2 * self.binding.nonlocal_elements().sum())

    def storage_words_per_rank(self) -> np.ndarray:
        out = np.zeros(self.machine.nprocs)
        for r in range(self.machine.nprocs):
            out[r] = (
                self.binding.idx.local(r).size
                + self.binding.val.local(r).size
                + self.binding.ptr.local(r).size
            )
        return out


# ---------------------------------------------------------------------- #
# Section 5.1: CSC variants
# ---------------------------------------------------------------------- #
class CscSerial(MatvecStrategy):
    """The CSC scatter loop as HPF-1 must run it: serially.

    "As in the dense case, there are dependencies between j-iterations and
    no parallel loop execution is possible."  Compute is serialised and
    every remote ``q(row(k))`` update is a message to the owner.
    """

    name = "csc_serial"

    def __init__(self, machine, matrix):
        super().__init__(machine, matrix)
        self.csc: CSCMatrix = self.matrix.to_csc()
        self._dist = Block(self.n, machine.nprocs)

    def vector_distribution(self) -> Distribution:
        return self._dist

    def apply(self, p: DistributedArray, q: DistributedArray, tag: str = "matvec") -> None:
        self._check_vectors(p, q)
        nprocs = self.machine.nprocs
        indptr, indices, data = self.csc.indptr, self.csc.indices, self.csc.data
        p_full = p.to_global()  # p(j) is local to column j's owner
        total = np.zeros(self.n)
        cols = self.csc.expanded_cols()
        np.add.at(total, indices, data * p_full[cols])
        # serialised compute: 2 flops per nonzero, one rank at a time
        flops = np.zeros(nprocs)
        col_owner_all = self._dist.owners(cols)
        for r in range(nprocs):
            flops[r] = 2.0 * float(np.count_nonzero(col_owner_all == r))
        self.machine.charge_serialized_compute(flops)
        if nprocs > 1:
            # one message per (column, remote q-owner) pair, serialised
            row_owner = self._dist.owners(indices)
            remote = row_owner != col_owner_all
            if remote.any():
                pair_ids = (
                    cols[remote].astype(np.int64) * nprocs + row_owner[remote]
                )
                pairs, counts = np.unique(pair_ids, return_counts=True)
                messages = int(pairs.size)
                words = float(counts.sum())
                time = float(
                    messages * self.machine.cost.t_startup
                    + words * self.machine.cost.t_comm
                )
                self.machine.charge_comm_interval("p2p", messages, words, time, tag)
        for r in range(nprocs):
            q.local(r)[:] = total[self._dist.local_indices_cached(r)]

    def apply_transpose(
        self, x: DistributedArray, y: DistributedArray, tag: str = "matvec_T"
    ) -> None:
        """``y = A^T x`` under CSC is the easy gather direction."""
        self._check_vectors(x, y)
        x_full = x.gather_to_all(tag=tag)
        indptr, indices, data = self.csc.indptr, self.csc.indices, self.csc.data
        for r in range(self.machine.nprocs):
            lo, hi = self._dist.local_range(r)
            seg = slice(indptr[lo], indptr[hi])
            cols = (
                np.repeat(
                    np.arange(lo, hi, dtype=np.int64), np.diff(indptr[lo : hi + 1])
                )
                - lo
            )
            local_y = np.zeros(hi - lo)
            np.add.at(local_y, cols, data[seg] * x_full[indices[seg]])
            y.local(r)[:] = local_y
            self.machine.charge_compute(r, 2.0 * (indptr[hi] - indptr[lo]))

    def storage_words_per_rank(self) -> np.ndarray:
        counts = Block(self.csc.nnz, self.machine.nprocs).counts().astype(float)
        ptr = Block(self.n + 1, self.machine.nprocs).counts().astype(float)
        return 2.0 * counts + ptr


class CscPrivateMerge(MatvecStrategy):
    """Section 5.1's extension: ON PROCESSOR + PRIVATE(q) WITH MERGE(+).

    Each processor executes a contiguous chunk of columns (the paper's
    ``ITERATION j ON PROCESSOR(j/np)``), accumulating into its private copy
    of ``q``; the copies are merged by the runtime SUM reduction at region
    end (Figure 5).  ``p(j)`` is already local to column ``j``'s owner, so
    -- unlike the row-wise Scenario 1 -- *no broadcast of p is needed*.

    With ``balanced=True`` the column chunks come from
    ``CG_BALANCED_PARTITIONER_1`` over per-column nonzero counts
    (Section 5.2.2), and the vectors adopt the matching irregular-block
    distribution so locality is preserved.
    """

    name = "csc_private"

    def __init__(self, machine, matrix, balanced: bool = False):
        super().__init__(machine, matrix)
        self.csc: CSCMatrix = self.matrix.to_csc()
        self.balanced = bool(balanced)
        nprocs = machine.nprocs
        if balanced:
            weights = self.csc.col_lengths().astype(float)
            self.column_cuts = cg_balanced_partitioner_1(weights, nprocs)
            self._dist: Distribution = IrregularBlock(self.column_cuts, nprocs)
            self.name = "csc_private_balanced"
        else:
            block = Block(self.n, nprocs)
            self.column_cuts = block.boundaries()
            self._dist = block
        self.mapping = OnProcessor.from_boundaries(self.column_cuts)

    def vector_distribution(self) -> Distribution:
        return self._dist

    def _col_nnz(self, rank: int) -> int:
        lo, hi = int(self.column_cuts[rank]), int(self.column_cuts[rank + 1])
        return int(self.csc.indptr[hi] - self.csc.indptr[lo])

    def apply(self, p: DistributedArray, q: DistributedArray, tag: str = "matvec") -> None:
        self._check_vectors(p, q)
        indptr, indices, data = self.csc.indptr, self.csc.indices, self.csc.data
        region = PrivateRegion(self.machine, self.n, merge="+")
        for r in range(self.machine.nprocs):
            lo, hi = int(self.column_cuts[r]), int(self.column_cuts[r + 1])
            seg = slice(indptr[lo], indptr[hi])
            cols = np.repeat(
                np.arange(lo, hi, dtype=np.int64), np.diff(indptr[lo : hi + 1])
            )
            # p(j) for the rank's own columns: local reads only
            contrib = data[seg] * p.local(r)[cols - lo]
            np.add.at(region.local(r), indices[seg], contrib)
            self.machine.charge_compute(r, 2.0 * contrib.size)
        region.merge_into(q, tag=tag)

    def apply_transpose(
        self, x: DistributedArray, y: DistributedArray, tag: str = "matvec_T"
    ) -> None:
        """``y = A^T x``: gather x, per-column dot products, all local writes."""
        self._check_vectors(x, y)
        x_full = x.gather_to_all(tag=tag)
        indptr, indices, data = self.csc.indptr, self.csc.indices, self.csc.data
        for r in range(self.machine.nprocs):
            lo, hi = int(self.column_cuts[r]), int(self.column_cuts[r + 1])
            seg = slice(indptr[lo], indptr[hi])
            cols = (
                np.repeat(
                    np.arange(lo, hi, dtype=np.int64), np.diff(indptr[lo : hi + 1])
                )
                - lo
            )
            local_y = np.zeros(hi - lo)
            np.add.at(local_y, cols, data[seg] * x_full[indices[seg]])
            y.local(r)[:] = local_y
            self.machine.charge_compute(r, 2.0 * (indptr[hi] - indptr[lo]))

    def per_rank_nnz(self) -> np.ndarray:
        """Nonzeros (work) per rank -- the load-balance diagnostic."""
        return np.array(
            [self._col_nnz(r) for r in range(self.machine.nprocs)], dtype=float
        )

    def storage_words_per_rank(self) -> np.ndarray:
        out = np.zeros(self.machine.nprocs)
        for r in range(self.machine.nprocs):
            out[r] = 2.0 * self._col_nnz(r) + (
                self.column_cuts[r + 1] - self.column_cuts[r] + 1
            )
        return out


def make_strategy(name: str, machine, matrix, **kwargs) -> MatvecStrategy:
    """Build a strategy by its table name."""
    from .checkerboard import DenseCheckerboard
    from .halo import CsrHalo

    registry = {
        "dense_checkerboard": lambda: DenseCheckerboard(machine, matrix),
        "dense_rowblock": lambda: RowBlockDense(machine, matrix),
        "csr_halo": lambda: CsrHalo(machine, matrix),
        "dense_colblock_serial": lambda: ColBlockDenseSerial(machine, matrix),
        "dense_colblock_2dtemp": lambda: ColBlockDenseTwoDimTemp(machine, matrix),
        "csr_forall": lambda: CsrForall(machine, matrix, **kwargs),
        "csr_forall_aligned": lambda: CsrForall(machine, matrix, aligned=True),
        "csc_serial": lambda: CscSerial(machine, matrix),
        "csc_private": lambda: CscPrivateMerge(machine, matrix, **kwargs),
        "csc_private_balanced": lambda: CscPrivateMerge(machine, matrix, balanced=True),
    }
    try:
        return registry[name]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(registry)}"
        ) from None
