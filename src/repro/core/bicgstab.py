"""Distributed stabilised BiCG (paper Section 2.1).

"The Stabilized BiCG algorithm also uses two matrix vector operations but
avoids using A^T and therefore can be optimized using the data
distribution ideas we discuss here.  It does however involve four inner
products, so will have a greater demand for an efficient intrinsic for
this than basic CG."

Those four inner products per iteration (rho, rt.v, t.s, t.t) each pay an
allreduce merge; benchmark E13 counts them against CG's two.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .driver import finish_solve, start_solve
from .matvec import MatvecStrategy
from .result import SolveResult
from .stopping import StoppingCriterion

__all__ = ["hpf_bicgstab"]


def hpf_bicgstab(
    strategy: MatvecStrategy,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Solve ``A x = b`` with distributed BiCGSTAB (no transpose products)."""
    ctx = start_solve(strategy, b, x0, criterion)
    rnorm = ctx.r.norm2()
    ctx.history.append(rnorm)
    if ctx.stop(rnorm):
        return finish_solve(ctx, "bicgstab", True, 0)

    rt = ctx.new_vector("rt")
    rt.assign(ctx.r)
    p = ctx.new_vector("p")
    v = ctx.new_vector("v")
    s = ctx.new_vector("s")
    t = ctx.new_vector("t")

    rho = alpha = omega = 1.0
    converged = False
    iterations = 0
    for k in range(1, ctx.maxiter + 1):
        rho0 = rho
        rho = rt.dot(ctx.r)  # inner product 1
        if rho == 0.0 or omega == 0.0:
            break
        if k == 1:
            p.assign(ctx.r)
        else:
            beta = (rho / rho0) * (alpha / omega)
            # p = r + beta (p - omega v)
            p.axpy(-omega, v)
            p.saypx(beta, ctx.r)
        strategy.apply(p, v)  # v = A p
        rtv = rt.dot(v)  # inner product 2
        if rtv == 0.0:
            break
        alpha = rho / rtv
        s.assign(ctx.r)
        s.axpy(-alpha, v)
        snorm = s.norm2()
        if ctx.stop(snorm):
            ctx.x.axpy(alpha, p)
            ctx.history.append(snorm)
            iterations = k
            converged = True
            break
        strategy.apply(s, t)  # t = A s
        tt = t.dot(t)  # inner product 3
        if tt == 0.0:
            break
        omega = t.dot(s) / tt  # inner product 4
        ctx.x.axpy(alpha, p)
        ctx.x.axpy(omega, s)
        ctx.r.assign(s)
        ctx.r.axpy(-omega, t)
        rnorm = ctx.r.norm2()
        ctx.history.append(rnorm)
        iterations = k
        if ctx.stop(rnorm):
            converged = True
            break
    return finish_solve(ctx, "bicgstab", converged, iterations)
