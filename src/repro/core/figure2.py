"""The paper's Figure-2 program, executed statement by statement.

The solver drivers in :mod:`repro.core.cg` use mat-vec strategy objects --
the *compiled* view.  This module instead executes the figure's HPF source
as written, one construct at a time, through the language-level runtime:

* ``rho = DOT_PRODUCT(r, r)``      -> :func:`repro.hpf.intrinsics.dot_product`
* ``p = beta * p + r``             -> :func:`repro.core.kernels.saypx`
* ``q = 0.0`` + the FORALL/DO nest -> :func:`repro.hpf.forall.forall` with the
  row loop as the iteration body
* ``x = x + alpha * p`` etc.       -> :func:`repro.core.kernels.saxpy`

It is deliberately the *interpreted* path: slower in host time (the FORALL
body is a Python loop per row), but it demonstrates that the figure's
program text, under this runtime's semantics, computes exactly what the
optimised strategy path computes -- and charges the same machine model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hpf.array import DistributedArray
from ..hpf.forall import forall
from ..hpf.intrinsics import dot_product
from ..machine.machine import Machine
from ..sparse.convert import as_matrix
from .kernels import saxpy, saypx
from .result import ConvergenceHistory, SolveResult
from .stopping import StoppingCriterion

__all__ = ["figure2_cg"]


def figure2_cg(
    machine: Machine,
    matrix,
    b: np.ndarray,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Run the Figure-2 CG program literally on the HPF runtime.

    Vectors are BLOCK-distributed and aligned with ``p`` exactly as the
    figure's directives demand; the sparse mat-vec is the figure's FORALL
    over rows with its sequential inner DO; each iteration performs the
    figure's two DOT_PRODUCTs, one saypx and two saxpys.
    """
    A = as_matrix(matrix).to_csr()
    n = A.nrows
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b must have shape ({n},), got {b.shape}")
    crit = criterion or StoppingCriterion()
    indptr, indices, data = A.indptr, A.indices, A.data

    clock_before = machine.elapsed()
    stats_before = machine.stats.snapshot()

    # REAL, dimension(1:n) :: x, r, p, q  + the ALIGN/DISTRIBUTE block
    p = DistributedArray.from_global(machine, b, name="p")  # p = b
    q = DistributedArray(machine, n, name="q").align_with(p)
    r = DistributedArray.from_global(machine, b, name="r").align_with(p)
    x = DistributedArray(machine, n, name="x").align_with(p)
    b_d = DistributedArray.from_global(machine, b, name="b").align_with(p)

    bnorm = np.sqrt(max(0.0, dot_product(b_d, b_d, tag="setup")))
    history = ConvergenceHistory()
    rho = dot_product(r, r)  # rho = r . r
    history.append(float(np.sqrt(max(0.0, rho))))
    if crit.satisfied(history.final, bnorm):
        return _result(machine, x, history, True, 0, clock_before, stats_before)

    def sparse_matvec() -> None:
        """q = 0.0 followed by the figure's FORALL(j=1:n) / DO k nest."""
        q.fill(0.0)
        p_full = p.gather_to_all(tag="matvec")  # the broadcast of p

        def body(j: int) -> float:
            acc = 0.0
            for k in range(indptr[j], indptr[j + 1]):
                acc += data[k] * p_full[indices[k]]
            return acc

        forall(
            q,
            body,
            flops_per_iteration=lambda j: 2.0 * (indptr[j + 1] - indptr[j]),
        )

    converged = False
    iterations = 0
    for it in range(1, crit.cap(n) + 1):  # DO k = 1, Niter
        if it > 1:
            beta = rho / rho0
            saypx(beta, p, r)  # p = beta * p + r   ! saypx
        sparse_matvec()  # q = A . p (CSR FORALL)
        pq = dot_product(p, q)
        if pq == 0.0:
            break
        alpha = rho / pq  # alpha = rho / DOT_PRODUCT(p, q)
        saxpy(alpha, p, x)  # x = x + alpha * p  ! saxpy
        saxpy(-alpha, q, r)  # r = r - alpha * q  ! saxpy
        rho0 = rho
        rho = dot_product(r, r)  # rho = r . r        ! sdot
        history.append(float(np.sqrt(max(0.0, rho))))
        iterations = it
        if crit.satisfied(history.final, bnorm):  # IF (stop_criterion) EXIT
            converged = True
            break
    return _result(
        machine, x, history, converged, iterations, clock_before, stats_before
    )


def _result(machine, x, history, converged, iterations, clock_before, stats_before):
    delta = stats_before.since(machine.stats)
    return SolveResult(
        x=x.to_global(),
        converged=converged,
        iterations=iterations,
        history=history,
        solver="cg",
        strategy="figure2_literal",
        machine_elapsed=machine.elapsed() - clock_before,
        comm={
            "messages": delta.messages,
            "words": delta.words,
            "comm_time": delta.comm_time,
            "flops": delta.flops,
        },
    )
