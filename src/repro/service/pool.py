"""Warm worker pool: persistent rank processes reused across solves.

A one-shot :class:`~repro.backend.process.ProcessBackend` run pays, per
solve: fork/spawn of P processes, creation of P+1 queues and a barrier,
NumPy/module state warm-up, and a full reap.  For the ROADMAP's
"millions of users" stream that per-job tax dominates small solves.  The
:class:`WarmPool` keeps one **generation** of rank processes alive across
jobs: each worker blocks on a per-rank task queue, receives
``(job_id, program, timeout)``, runs the *exact same* ``_drive`` loop the
one-shot backend runs (same heartbeats, same checkpoint publishing, same
deadline semantics), then loops for the next job.  Partition and
distribution caches memoized inside each worker (PR 5) stay hot between
jobs that share a layout -- which is what benchmark E24 measures.

Failure semantics -- the part a *service* cares about:

* any job failure (worker error, fail-stop crash, straggler verdict,
  deadline) **condemns the generation**: every worker is reaped with
  bounded joins and every queue closed, because a broken barrier or a
  half-drained inbox must never leak into the next job;
* the next ``run()`` transparently builds a fresh generation -- at
  whatever rank count the caller asks for, so
  :func:`~repro.backend.solve.run_with_recovery` drives respawn *and*
  shrink against the pool unchanged (a shrunken request simply builds a
  smaller generation, which then serves the stream warm on the
  survivors);
* :meth:`heal` re-grows a shrunken or dead pool back to
  ``target_nprocs`` between jobs;
* :meth:`shutdown` is the graceful path: a ``stop`` message per worker,
  bounded joins, then the reaper for anything still alive.

Messages are tagged with the generation's job id on both the result and
the p2p queues; a worker drops any payload from an older job on the
floor, so even a message that somehow survives condemnation cannot
corrupt a later solve.

The pool *is* an :class:`~repro.backend.base.ExecutionBackend` (it
subclasses the one-shot backend for its supervision helpers), so
``backend_solve``/``run_with_recovery``/``cross_validate`` all accept it
wherever they accept a ``ProcessBackend``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from typing import Any, Dict, Optional, Tuple

from ..backend.base import (
    BackendError,
    BackendRun,
    BackendTimeoutError,
    ProgramFactory,
    WorkerCrashedError,
    WorkerFailedError,
)
from ..backend.process import (
    _PARENT_GRACE,
    ProcessBackend,
    _drive,
    crash_injection_support,
    process_backend_support,
)

__all__ = ["WarmPool"]


# ---------------------------------------------------------------------- #
# worker-side job scoping
# ---------------------------------------------------------------------- #
class _JobResultQueue:
    """Tags every report with the job id so the parent can scope it."""

    __slots__ = ("q", "job_id")

    def __init__(self, q, job_id: int):
        self.q = q
        self.job_id = job_id

    def put(self, item) -> None:
        self.q.put((self.job_id,) + tuple(item))


class _JobInbox:
    """A rank inbox scoped to one job: stale traffic is dropped on read."""

    __slots__ = ("q", "job_id")

    def __init__(self, q, job_id: int):
        self.q = q
        self.job_id = job_id

    def put(self, item) -> None:
        src, tag, payload = item
        self.q.put((self.job_id, src, tag, payload))

    def get(self, timeout: Optional[float] = None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                raise queue_mod.Empty
            item = self.q.get(timeout=remaining)
            if item[0] == self.job_id:
                return item[1:]
            # stale message from a condemned job: discard and keep waiting

    def cancel_join_thread(self) -> None:
        self.q.cancel_join_thread()


def _pool_worker_main(rank, size, task_q, inboxes, result_q, barrier,
                      hb_interval):
    """Persistent worker: serve jobs until told to stop or a job breaks."""
    try:
        while True:
            task = task_q.get()
            if task[0] == "stop":
                break
            _, job_id, program, timeout, trace = task
            rq = _JobResultQueue(result_q, job_id)
            boxes = [_JobInbox(q, job_id) for q in inboxes]
            broken = False
            try:
                outcome = ("ok", rank,
                           _drive(rank, size, program, boxes, rq, barrier,
                                  timeout, trace, hb_interval))
                rq.put(("done", rank, time.monotonic()))
                # drain barrier, exactly like the one-shot worker: nobody
                # proceeds until every rank completed its receives, so no
                # in-flight message can be abandoned between jobs
                try:
                    barrier.wait(timeout)
                except Exception:
                    broken = True  # a peer failed; generation is done for
            except BaseException as exc:  # noqa: BLE001 - report, don't die
                try:
                    barrier.abort()
                except Exception:
                    pass
                outcome = ("err", rank, f"{type(exc).__name__}: {exc}\n"
                                        f"{traceback.format_exc()}")
                broken = True
            rq.put(outcome)
            if broken:
                # the barrier is unusable; exit and let the parent reap
                break
    finally:
        try:
            result_q.close()
            result_q.join_thread()  # flush the last outcome
        except Exception:
            pass
        for q in inboxes:
            q.cancel_join_thread()


# ---------------------------------------------------------------------- #
# parent side
# ---------------------------------------------------------------------- #
class _Generation:
    """One cohort of persistent workers sharing queues and a barrier."""

    def __init__(self, ctx, nprocs: int, hb_interval: float):
        self.nprocs = nprocs
        self.task_qs = [ctx.Queue() for _ in range(nprocs)]
        self.inboxes = [ctx.Queue() for _ in range(nprocs)]
        self.result_q = ctx.Queue()
        self.barrier = ctx.Barrier(nprocs)
        self.next_job_id = 0
        self.jobs_served = 0
        self.workers = [
            ctx.Process(
                target=_pool_worker_main,
                args=(rank, nprocs, self.task_qs[rank], self.inboxes,
                      self.result_q, self.barrier, hb_interval),
                name=f"repro-pool-{rank}",
                daemon=True,
            )
            for rank in range(nprocs)
        ]

    def all_queues(self):
        return self.task_qs + self.inboxes + [self.result_q]

    def healthy(self) -> bool:
        return all(w.is_alive() for w in self.workers)


class WarmPool(ProcessBackend):
    """A :class:`ProcessBackend` whose workers survive between runs.

    Accepts every ``ProcessBackend`` knob (timeout, heartbeat interval,
    straggler deadline, fault plan, ``crash_on_checkpoint``) with the
    same semantics -- re-read at each ``run()``, so a service can set
    per-job deadlines on the shared instance.  ``target_nprocs`` is the
    pool's home size: :meth:`heal` restores it after a shrink.
    """

    name = "warm_pool"

    def __init__(self, target_nprocs: int, **kwargs):
        if target_nprocs < 1:
            raise ValueError("target_nprocs must be >= 1")
        super().__init__(**kwargs)
        self.target_nprocs = target_nprocs
        self._gen: Optional[_Generation] = None
        self.rebuilds = 0  #: lifetime generation builds (1 = never rebuilt)

    # -------------------------------------------------------------- #
    @property
    def generation_size(self) -> int:
        """Rank count of the live generation (0 = no generation)."""
        return self._gen.nprocs if self._gen is not None else 0

    @property
    def jobs_served(self) -> int:
        return self._gen.jobs_served if self._gen is not None else 0

    def healthy(self) -> bool:
        """Every worker of the current generation is alive."""
        return self._gen is not None and self._gen.healthy()

    # -------------------------------------------------------------- #
    def _ensure_generation(self, nprocs: int) -> _Generation:
        ok, detail = process_backend_support(self.start_method)
        if not ok:
            raise BackendError(f"process backend unavailable: {detail}")
        gen = self._gen
        if gen is not None and (gen.nprocs != nprocs or not gen.healthy()):
            # size mismatch (shrink/heal) or a worker died idle: rebuild
            self.condemn()
            gen = None
        if gen is None:
            ctx = mp.get_context(detail)
            gen = _Generation(ctx, nprocs, self.heartbeat_interval)
            for w in gen.workers:
                w.start()
            self._gen = gen
            self.rebuilds += 1
        return gen

    def condemn(self) -> None:
        """Reap the current generation and release its queues.  Idempotent."""
        gen, self._gen = self._gen, None
        if gen is None:
            return
        self._reap(gen.workers)
        self._close_queues(gen.all_queues())

    def heal(self, nprocs: Optional[int] = None) -> int:
        """Ensure a healthy generation at ``nprocs`` (default: target size).

        Returns the resulting generation size.  Cheap when the pool is
        already healthy at that size (the common between-jobs call).
        """
        want = self.target_nprocs if nprocs is None else nprocs
        self._ensure_generation(want)
        return self.generation_size

    def shutdown(self, grace: float = 2.0) -> None:
        """Graceful stop: ask workers to exit, then reap stragglers."""
        gen, self._gen = self._gen, None
        if gen is None:
            return
        for tq in gen.task_qs:
            try:
                tq.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
        for w in gen.workers:
            if w.is_alive():
                w.join(timeout=grace)
        self._reap(gen.workers)
        self._close_queues(gen.all_queues())

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -------------------------------------------------------------- #
    def run(
        self,
        program: ProgramFactory,
        nprocs: int,
        *,
        checkpoints: Optional[Dict[int, Dict[int, Any]]] = None,
    ) -> BackendRun:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self._wants_kills():
            ok_kill, why = crash_injection_support(self.start_method)
            if not ok_kill:
                raise BackendError(f"crash injection unavailable: {why}")
        gen = self._ensure_generation(nprocs)
        job_id = gen.next_job_id
        gen.next_job_id += 1
        for tq in gen.task_qs:
            tq.put(("job", job_id, program, self.timeout, self.trace))
        try:
            reports = self._supervise(gen, job_id, checkpoints)
        except BaseException:
            # deadline, crash, straggler, worker error, KeyboardInterrupt:
            # the generation's barrier/queues are unusable -- reap it all,
            # with bounded joins, before letting the error propagate
            self.condemn()
            raise
        gen.jobs_served += 1
        return self._assemble(nprocs, reports)

    # -------------------------------------------------------------- #
    def _supervise(self, gen: _Generation, job_id: int, checkpoints):
        """Collect one job's reports; same verdicts as the one-shot backend."""
        nprocs = gen.nprocs
        workers = gen.workers
        reports: Dict[int, Tuple[Any, Dict[str, Any]]] = {}
        last_heartbeat: Dict[int, float] = {}
        done_ranks: set = set()
        run_start = time.monotonic()
        deadline = (
            None
            if self.timeout is None
            else run_start + self.timeout + _PARENT_GRACE
        )
        while len(reports) < nprocs:
            self._fire_due_time_kills(workers, reports, run_start)
            self._check_straggler(nprocs, reports, done_ranks, last_heartbeat)
            try:
                item = gen.result_q.get(timeout=0.1)
            except queue_mod.Empty:
                crashed = self._crashed_rank(workers, reports)
                if crashed is not None:
                    raise WorkerCrashedError(
                        crashed,
                        f"pool worker rank {crashed} vanished fail-stop "
                        f"(exitcode {workers[crashed].exitcode}; last "
                        f"heartbeat "
                        f"{self._hb_age(last_heartbeat, crashed):.2f}s ago)",
                    )
                dead = [
                    w.name
                    for r, w in enumerate(workers)
                    if r not in reports
                    and w.exitcode is not None
                    and w.exitcode != 0
                ]
                if dead:
                    raise WorkerFailedError(
                        f"pool worker(s) died without reporting: {dead}"
                    )
                if deadline is not None and time.monotonic() > deadline:
                    raise BackendTimeoutError(
                        f"warm pool timed out after {self.timeout:g}s; "
                        f"ranks missing: "
                        f"{sorted(set(range(nprocs)) - set(reports))}"
                    )
                continue
            jid, kind, rank, payload = item
            if jid != job_id:
                continue  # stale report from a previous (failed) job
            if kind == "hb":
                last_heartbeat[rank] = time.monotonic()
                continue
            if kind == "done":
                done_ranks.add(rank)
                last_heartbeat[rank] = time.monotonic()
                continue
            if kind == "ckpt":
                last_heartbeat[rank] = time.monotonic()
                iteration, snapshot = payload
                if checkpoints is not None:
                    checkpoints.setdefault(iteration, {})[rank] = snapshot
                due = self.crash_on_checkpoint.get(rank)
                if due is not None and iteration >= due:
                    del self.crash_on_checkpoint[rank]  # consumed-once
                    self._kill_rank(workers, rank)
                continue
            if kind == "err":
                crashed = self._crashed_rank(workers, reports)
                if crashed is not None:
                    raise WorkerCrashedError(
                        crashed,
                        f"pool worker rank {crashed} vanished fail-stop; "
                        f"rank {rank} failed in the aftermath:\n{payload}",
                    )
                raise WorkerFailedError(
                    f"rank {rank} failed on the warm pool:\n{payload}"
                )
            reports[rank] = payload
        return reports
