"""Admission-controlled, tenant-fair job queue.

The "millions of users" shape of the ROADMAP is many tenants sharing one
warm pool; the two failure modes a queue must prevent are **starvation**
(one chatty tenant monopolizing the pool) and **unbounded growth** (accept
everything, serve nothing).  This queue addresses both:

* **fairness** -- one FIFO lane per tenant, drained round-robin, so a
  tenant submitting 1000 jobs delays a tenant submitting 1 by at most one
  service time per cycle, not by 1000;
* **admission control** -- a global depth bound and a per-tenant depth
  bound; a submit over either limit raises the typed
  :class:`ServiceOverloadedError` *immediately* (backpressure at the
  door), instead of queueing work that would miss every deadline anyway.

Thread-safe: producers call :meth:`put` from any thread, the single
dispatcher thread calls :meth:`get`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Any, Dict, Optional

__all__ = ["TenantFairQueue", "ServiceOverloadedError"]


class ServiceOverloadedError(RuntimeError):
    """Admission control refused the job: the queue is at capacity.

    ``tenant`` names the lane that was full (``None`` = the global bound
    tripped); ``depth``/``limit`` report the load at refusal so clients
    can implement informed backoff.
    """

    def __init__(self, message: str, tenant: Optional[str] = None,
                 depth: int = 0, limit: int = 0):
        super().__init__(message)
        self.tenant = tenant
        self.depth = depth
        self.limit = limit


class TenantFairQueue:
    """Bounded multi-tenant FIFO with round-robin draining.

    Parameters
    ----------
    max_depth:
        Global bound on queued (not yet dispatched) jobs.
    max_per_tenant:
        Bound per tenant lane; ``None`` disables the per-lane bound
        (the global bound still applies).
    """

    def __init__(self, max_depth: int = 64,
                 max_per_tenant: Optional[int] = None):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if max_per_tenant is not None and max_per_tenant < 1:
            raise ValueError("max_per_tenant must be >= 1 (or None)")
        self.max_depth = max_depth
        self.max_per_tenant = max_per_tenant
        self._lanes: "OrderedDict[str, deque]" = OrderedDict()
        self._rr: deque = deque()  # round-robin order of tenants with work
        self._depth = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    # -------------------------------------------------------------- #
    def __len__(self) -> int:
        with self._lock:
            return self._depth

    def depths(self) -> Dict[str, int]:
        """Per-tenant queued-job counts (telemetry snapshot)."""
        with self._lock:
            return {t: len(q) for t, q in self._lanes.items() if q}

    # -------------------------------------------------------------- #
    def put(self, tenant: str, item: Any) -> None:
        """Enqueue ``item`` for ``tenant`` or raise ``ServiceOverloadedError``."""
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed to new submissions")
            if self._depth >= self.max_depth:
                raise ServiceOverloadedError(
                    f"service overloaded: {self._depth} jobs queued "
                    f"(global bound {self.max_depth})",
                    tenant=None, depth=self._depth, limit=self.max_depth,
                )
            lane = self._lanes.get(tenant)
            if lane is None:
                lane = self._lanes[tenant] = deque()
            if (self.max_per_tenant is not None
                    and len(lane) >= self.max_per_tenant):
                raise ServiceOverloadedError(
                    f"tenant {tenant!r} overloaded: {len(lane)} jobs queued "
                    f"(per-tenant bound {self.max_per_tenant})",
                    tenant=tenant, depth=len(lane),
                    limit=self.max_per_tenant,
                )
            if not lane:
                self._rr.append(tenant)  # lane becomes active
            lane.append(item)
            self._depth += 1
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue the next job, rotating tenants round-robin.

        Blocks up to ``timeout`` seconds (forever when ``None``); returns
        ``None`` on timeout or when the queue is closed *and* empty.
        """
        with self._not_empty:
            while self._depth == 0:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            tenant = self._rr.popleft()
            lane = self._lanes[tenant]
            item = lane.popleft()
            self._depth -= 1
            if lane:
                self._rr.append(tenant)  # still busy: back of the cycle
            return item

    # -------------------------------------------------------------- #
    def close(self) -> None:
        """Refuse new submissions; queued jobs remain drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def drain_remaining(self) -> list:
        """Atomically remove and return every queued item.

        Safe to call mid-stream (drain/park paths, not only shutdown):
        every lane is emptied — including any lane the round-robin cycle
        does not currently reference — and the per-tenant bookkeeping is
        reset, so ``len``/``depths`` read zero afterwards and a
        subsequent :meth:`put` admits exactly as it would on a fresh
        queue.  Items come back in the round-robin order :meth:`get`
        would have served them.
        """
        with self._lock:
            items = []
            # fair order first: cycle the active lanes like get() would
            while self._rr:
                tenant = self._rr.popleft()
                lane = self._lanes.get(tenant)
                if lane:
                    items.append(lane.popleft())
                    if lane:
                        self._rr.append(tenant)
            # belt and braces: any stragglers outside the cycle
            for lane in self._lanes.values():
                while lane:
                    items.append(lane.popleft())
            self._lanes.clear()
            self._rr.clear()
            self._depth = 0
            return items
