"""Service observability: per-attempt records, job verdicts, counters.

Everything an operator needs to answer "why did this job fail?" and "how
is the pool doing?" without reading logs: each job carries its full
attempt history (outcome, error, recovery action, backoff delay before
the attempt), and the service aggregates stream-level counters
(jobs/retries/breaker trips/heals) into one snapshot dict that the CLI
prints and the soak harness serializes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["AttemptRecord", "JobStatus", "ServiceCounters"]


#: terminal job states (``JobResult.status``)
class JobStatus:
    OK = "ok"                    #: solve converged (full rank count)
    DEGRADED = "degraded"        #: converged on fewer ranks than requested
    FAILED = "failed"            #: classified error after all retries
    REJECTED = "rejected"        #: admission control refused the submit
    CANCELLED = "cancelled"      #: service shut down before execution
    EXPIRED = "expired"          #: deadline spent in the queue; pool untouched
    QUARANTINED = "quarantined"  #: poison job; never gets another generation
    PARKED = "parked"            #: graceful drain left it journaled for replay


@dataclass
class AttemptRecord:
    """One service-level execution attempt of one job."""

    attempt: int                      #: 1-based attempt index
    outcome: str                      #: ``"ok"`` or a failure label
    nprocs: int                       #: rank count the attempt ran at
    elapsed: float                    #: wall seconds spent in the attempt
    backoff_before: float = 0.0       #: delay slept before this attempt
    error: str = ""                   #: ``Type: message`` when failed
    #: the in-attempt recovery driver's own attempt log (crash respawns,
    #: shrinks, rebalances inside this one service attempt)
    recovery_log: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class ServiceCounters:
    """Stream-level accounting across the service's lifetime."""

    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    degraded: int = 0
    failed: int = 0
    retries: int = 0
    breaker_trips: int = 0
    breaker_fast_fails: int = 0
    pool_rebuilds: int = 0
    heals: int = 0
    quarantined: int = 0    #: jobs refused a fresh generation (poison)
    expired: int = 0        #: deadline fast-fails at dequeue
    deduped: int = 0        #: submits answered from an idempotency key
    replayed: int = 0       #: jobs re-enqueued from the journal at start
    parked: int = 0         #: queued jobs left journaled at graceful drain
    busy_time: float = 0.0  #: seconds the dispatcher spent executing jobs

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


def summarize_attempts(attempts: List[AttemptRecord]) -> str:
    """One-line human summary: ``crash(+0.05s) -> straggler(+0.11s) -> ok``."""
    parts = []
    for rec in attempts:
        delay = (
            f"(+{rec.backoff_before:.2f}s)" if rec.backoff_before > 0 else ""
        )
        parts.append(f"{rec.outcome}{delay}")
    return " -> ".join(parts) if parts else "(no attempts)"
