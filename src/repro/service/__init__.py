"""Persistent resilient solver service (DESIGN.md §11).

Layers, bottom-up:

* :mod:`~repro.service.pool` -- :class:`WarmPool`, persistent rank
  processes reused across solves (generations, condemn-on-failure,
  heal);
* :mod:`~repro.service.queue` -- :class:`TenantFairQueue`, bounded
  admission with per-tenant fairness;
* :mod:`~repro.service.retry` -- :class:`RetryPolicy`, exponential
  backoff with seeded jitter over retryable infrastructure failures;
* :mod:`~repro.service.breaker` -- :class:`CircuitBreaker`, per-pool
  fast-fail after consecutive failures;
* :mod:`~repro.service.journal` -- :class:`JobJournal`, the write-ahead
  job log making accepted work survive a dead driver (replay, dedupe by
  idempotency key, poison-job quarantine);
* :mod:`~repro.service.service` -- :class:`SolverService`, the
  dispatcher tying them together; jobs are :class:`JobSpec`, futures
  are :class:`JobHandle`, verdicts are :class:`JobResult`;
* :mod:`~repro.service.soak` -- the chaos-driven stream soak backing
  the converge-or-classified-error acceptance contract;
* :mod:`~repro.service.telemetry` -- attempt records and counters.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, CircuitOpenError
from .journal import (
    JobJournal,
    JobQuarantinedError,
    JobState,
    new_idempotency_key,
)
from .pool import WarmPool
from .queue import ServiceOverloadedError, TenantFairQueue
from .retry import RetryPolicy, is_retryable
from .service import JobHandle, JobResult, JobSpec, SolverService
from .soak import SoakJobVerdict, SoakReport, leaked_pool_workers, soak_run
from .telemetry import AttemptRecord, JobStatus, ServiceCounters

__all__ = [
    "AttemptRecord",
    "CircuitBreaker",
    "CircuitOpenError",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "JobHandle",
    "JobJournal",
    "JobQuarantinedError",
    "JobResult",
    "JobSpec",
    "JobState",
    "JobStatus",
    "RetryPolicy",
    "ServiceCounters",
    "ServiceOverloadedError",
    "SoakJobVerdict",
    "SoakReport",
    "SolverService",
    "TenantFairQueue",
    "WarmPool",
    "is_retryable",
    "leaked_pool_workers",
    "new_idempotency_key",
    "soak_run",
]
