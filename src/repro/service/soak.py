"""Chaos-driven service soak: a seeded multi-tenant job stream under fire.

The acceptance contract for the service (mirrors the chaos harness's
converge-or-classified-error contract, lifted to a *stream*):

* every job either converges **bitwise-equal** to its fault-free
  simulated reference (full-rank outcomes -- crash respawns replay the
  identical recurrence from the checkpoint), converges within tolerance
  on fewer ranks (``degraded``, after a mid-stream shrink), or resolves
  to a **classified** failure -- never an unclassified exception, never
  a hang;
* after a shrink the queue *keeps serving* on the survivors (jobs
  complete while the pool is below target) and the pool heals back
  between jobs;
* at drain, **zero** pool workers remain alive.

Fault draws are seeded per job, so a soak is exactly reproducible from
``(seed, jobs, nprocs, n)`` -- the CI job pins these and archives the
report.  Faults are crashes (checkpoint-triggered SIGKILL on the process
pool, virtual-time kills on the simulator) and stragglers (per-op
delays / compute dilation); message-level faults are excluded here
because they live below the service layer and already have their own
harness (``repro chaos``).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..backend.chaos import _chaos_problem
from ..backend.simulated import SimulatedBackend
from ..backend.solve import backend_solve
from ..core.resilience import ReliableConfig, ResilienceConfig
from ..core.stopping import StoppingCriterion
from ..machine.faults import FaultPlan, RankCrash, RankSlowdown
from .breaker import CircuitBreaker
from .journal import JobJournal
from .pool import WarmPool
from .queue import TenantFairQueue
from .retry import RetryPolicy
from .service import JobSpec, JobStatus, SolverService

__all__ = ["SoakJobVerdict", "SoakReport", "soak_run"]

POOL_NAME_PREFIX = "repro-pool-"


def leaked_pool_workers() -> List[str]:
    """Names of still-live pool worker processes (must be [] after drain)."""
    return sorted(
        p.name
        for p in mp.active_children()
        if p.name.startswith(POOL_NAME_PREFIX)
    )


@dataclass
class SoakJobVerdict:
    """Contract evaluation of one soak job."""

    job_id: int
    tenant: str
    seed: int
    status: str
    classification: str
    fault: str                      #: "none" | "crash" | "straggler"
    attempts: int
    nprocs_final: int
    bitwise: bool                   #: exact match to the reference
    max_abs_err: float
    elapsed: float
    contract_ok: bool
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class SoakReport:
    """Whole-stream verdict: per-job outcomes plus service accounting."""

    seed: int
    backend: str
    jobs: int
    nprocs: int
    n: int
    policy: str
    elapsed: float
    verdicts: List[SoakJobVerdict] = field(default_factory=list)
    counters: Dict[str, Any] = field(default_factory=dict)
    final_status: Dict[str, Any] = field(default_factory=dict)
    leaked_workers: List[str] = field(default_factory=list)
    served_while_shrunk: int = 0    #: jobs completed on a below-target pool

    @property
    def contract_held(self) -> bool:
        return (
            all(v.contract_ok for v in self.verdicts)
            and not self.leaked_workers
        )

    @property
    def ok_jobs(self) -> int:
        return sum(
            1 for v in self.verdicts
            if v.status in (JobStatus.OK, JobStatus.DEGRADED)
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "backend": self.backend,
            "jobs": self.jobs,
            "nprocs": self.nprocs,
            "n": self.n,
            "policy": self.policy,
            "elapsed": round(self.elapsed, 3),
            "contract_held": self.contract_held,
            "ok_jobs": self.ok_jobs,
            "served_while_shrunk": self.served_while_shrunk,
            "leaked_workers": self.leaked_workers,
            "counters": self.counters,
            "final_status": self.final_status,
            "verdicts": [v.as_dict() for v in self.verdicts],
        }

    def summary(self) -> str:
        by_class: Dict[str, int] = {}
        for v in self.verdicts:
            key = v.status if v.status != JobStatus.FAILED else (
                f"failed:{v.classification}"
            )
            by_class[key] = by_class.get(key, 0) + 1
        mix = ", ".join(f"{k}={n}" for k, n in sorted(by_class.items()))
        return (
            f"soak seed={self.seed} backend={self.backend}: "
            f"{self.ok_jobs}/{self.jobs} jobs converged ({mix}); "
            f"served_while_shrunk={self.served_while_shrunk}; "
            f"leaked={len(self.leaked_workers)}; "
            f"contract {'HELD' if self.contract_held else 'BROKEN'}"
        )


# ---------------------------------------------------------------------- #
def _draw_job_faults(
    rng: np.random.Generator,
    nprocs: int,
    crash_prob: float,
    straggler_prob: float,
    backend: str,
) -> Dict[str, Any]:
    """One job's seeded fault mix: maybe a crash, maybe a straggler."""
    fault = "none"
    crash_on_checkpoint: Dict[int, int] = {}
    crashes: List[RankCrash] = []
    slowdowns: List[RankSlowdown] = []
    roll = rng.random()
    if roll < crash_prob:
        fault = "crash"
        victim = int(rng.integers(nprocs))
        ckpt = int(rng.integers(1, 4))
        if backend == "process":
            crash_on_checkpoint[victim] = ckpt
        else:
            crashes.append(RankCrash(victim, float(rng.uniform(1e-4, 5e-3))))
    elif roll < crash_prob + straggler_prob:
        fault = "straggler"
        victim = int(rng.integers(nprocs))
        slowdowns.append(
            RankSlowdown(
                rank=victim,
                at_time=0.0,
                factor=float(10.0 ** rng.uniform(7.0, 8.0)),
                op_delay=float(rng.uniform(1.5, 3.0)),
            )
        )
    plan = None
    if crashes or slowdowns:
        plan = FaultPlan(
            seed=int(rng.integers(2 ** 31)),
            crashes=crashes,
            slowdowns=slowdowns,
        )
    return {
        "fault": fault,
        "plan": plan,
        "crash_on_checkpoint": crash_on_checkpoint,
    }


def soak_run(
    jobs: int = 32,
    seed: int = 0,
    backend: str = "process",
    nprocs: int = 4,
    n: int = 48,
    tenants: int = 4,
    crash_prob: float = 0.3,
    straggler_prob: float = 0.2,
    policy: str = "shrink",
    deadline: float = 60.0,
    straggler_deadline: float = 1.0,
    rtol: float = 1.0e-8,
    retry: Optional[RetryPolicy] = None,
    service: Optional[SolverService] = None,
    journal_dir: Optional[str] = None,
    on_service: Optional[Any] = None,
) -> SoakReport:
    """Run a seeded soak stream through a fresh (or provided) service.

    ``policy="shrink"`` is the interesting default: a crash mid-solve
    drops the victim and the stream then runs on the survivors until the
    idle heal -- exercising exactly the degraded-mode path the service
    exists for.

    ``journal_dir`` constructs the soak's own service with a write-ahead
    job journal (ignored when ``service`` is supplied); ``on_service``
    is called with the started service before jobs are submitted -- the
    hook crash-replay drivers use to expose the service they are about
    to kill.
    """
    if backend not in ("process", "simulated"):
        raise ValueError("backend must be 'process' or 'simulated'")
    A, b = _chaos_problem(n)
    criterion = StoppingCriterion(rtol=1e-10, atol=0.0)
    cfg = ResilienceConfig(
        checkpoint_interval=5,
        sanity_interval=5,
        max_restarts=8,
        reliable=ReliableConfig(base_timeout=0.05, max_retries=8),
    )
    # one fault-free reference at the requested rank count: full-rank
    # outcomes must match it bitwise (checkpoint replay is exact and
    # cross-backend parity holds), degraded outcomes to tolerance (a
    # shrink changes the reduction layout, so only the chaos-harness
    # rtol contract applies)
    reference_x = backend_solve(
        "cg", A, b, backend="simulated", nprocs=nprocs, criterion=criterion
    ).x
    ref_scale = float(np.max(np.abs(reference_x))) or 1.0

    own_service = service is None
    if own_service:
        # size admission for the submitted stream *plus* the journal's
        # replay backlog: a rerun on a parked journal must re-enqueue
        # every non-terminal job in one go, not dribble them out over
        # several restarts because the queue was sized for --jobs alone
        backlog = 0
        if journal_dir is not None:
            backlog = len(JobJournal(journal_dir).replayable())
        service = SolverService(
            backend=(
                WarmPool(nprocs, timeout=deadline)
                if backend == "process"
                else SimulatedBackend(straggler_deadline=0.25)
            ),
            target_nprocs=nprocs,
            queue=TenantFairQueue(max_depth=jobs + backlog + 8),
            retry=retry or RetryPolicy(max_attempts=2, base_delay=0.01,
                                       max_delay=0.1, seed=seed),
            breaker=CircuitBreaker(failure_threshold=5, reset_timeout=0.5),
            journal_dir=journal_dir,
        )
    service.start()
    if on_service is not None:
        on_service(service)

    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    submitted = []
    for j in range(jobs):
        job_seed = int(rng.integers(2 ** 31))
        draw = _draw_job_faults(
            np.random.default_rng(job_seed), nprocs,
            crash_prob, straggler_prob, backend,
        )
        spec = JobSpec(
            matrix=A, b=b,
            tenant=f"tenant-{j % tenants}",
            nprocs=nprocs,
            criterion=criterion,
            resilience=cfg,
            faults=draw["plan"],
            crash_on_checkpoint=draw["crash_on_checkpoint"],
            policy=policy,
            deadline=deadline if backend == "process" else None,
            # deadline units are substrate-specific: wall seconds on the
            # process pool, virtual seconds on the simulator (same split
            # as the chaos harness)
            straggler_deadline=(
                (straggler_deadline if backend == "process" else 0.25)
                if draw["fault"] == "straggler"
                else None
            ),
            heartbeat_interval=(
                min(0.1, straggler_deadline / 4.0)
                if backend == "process" and draw["fault"] == "straggler"
                else None
            ),
        )
        handle = service.submit(spec)
        submitted.append((handle, job_seed, draw["fault"]))

    report = SoakReport(
        seed=seed, backend=backend, jobs=jobs, nprocs=nprocs, n=n,
        policy=policy, elapsed=0.0,
    )
    pool = service.pool
    for handle, job_seed, fault in submitted:
        res = handle.result(timeout=max(4 * deadline, 120.0))
        if (
            res.ok
            and pool is not None
            and 0 < pool.generation_size < nprocs
        ):
            # completed while the pool was still running degraded
            report.served_while_shrunk += 1
        verdict = _judge(res, fault, job_seed, reference_x,
                         rtol, ref_scale)
        report.verdicts.append(verdict)

    service.drain(timeout=60.0)
    report.final_status = service.status()
    if own_service:
        service.shutdown()
        time.sleep(0.2)  # give reaped children a beat to be collected
        report.leaked_workers = leaked_pool_workers()
    report.counters = dict(service.counters.as_dict())
    report.elapsed = time.perf_counter() - t0
    return report


def _judge(res, fault, job_seed, reference_x, rtol, ref_scale):
    """Evaluate one job result against the soak contract."""
    bitwise = False
    max_err = float("nan")
    ok = False
    detail = ""
    if res.status == JobStatus.OK:
        max_err = float(np.max(np.abs(res.x - reference_x)))
        bitwise = bool(np.array_equal(res.x, reference_x))
        ok = bitwise
        if not ok:
            detail = f"full-rank result not bitwise (max|err|={max_err:.2e})"
    elif res.status == JobStatus.DEGRADED:
        max_err = float(np.max(np.abs(res.x - reference_x)))
        ok = max_err <= rtol * ref_scale
        if not ok:
            detail = (
                f"degraded result off-reference "
                f"(max|err|={max_err:.2e} > {rtol:g}*{ref_scale:g})"
            )
    elif res.status in (JobStatus.FAILED, JobStatus.EXPIRED,
                        JobStatus.QUARANTINED):
        ok = bool(res.classification)
        if not ok:
            detail = f"unclassified failure: {res.error}"
    elif res.status == JobStatus.PARKED:
        # graceful drain journaled it for replay: not a contract breach
        ok = True
        detail = "parked at graceful drain (journaled for replay)"
    else:
        detail = f"unexpected terminal status {res.status!r}"
    return SoakJobVerdict(
        job_id=res.job_id,
        tenant=res.tenant,
        seed=job_seed,
        status=res.status,
        classification=res.classification,
        fault=fault,
        attempts=len(res.attempts),
        nprocs_final=res.nprocs_final,
        bitwise=bitwise,
        max_abs_err=max_err,
        elapsed=res.elapsed,
        contract_ok=ok,
        detail=detail,
    )
