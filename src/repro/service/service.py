"""The persistent resilient solver service.

Composition of the pieces in this package, in the order a job meets
them::

    submit() -- admission control ----------------- TenantFairQueue
        |        (ServiceOverloadedError at the door)
    dispatcher thread -- fast-fail gate ----------- CircuitBreaker
        |
    attempt loop -- backoff between attempts ------ RetryPolicy
        |
    backend_solve + run_with_recovery ------------- WarmPool
        |        (respawn / shrink / rebalance *inside* one attempt)
    JobResult -- full attempt telemetry ----------- AttemptRecord

Two nested resilience loops, deliberately different in kind:

* the **inner** loop (``run_with_recovery``) rolls a *single job* back to
  its newest complete checkpoint after a crash or straggler verdict --
  possibly shrinking onto survivors -- and its attempt log rides along in
  each :class:`~repro.service.telemetry.AttemptRecord`;
* the **outer** loop (this module) re-executes the *whole job* when even
  the inner loop gave up, with exponential backoff, and trips the
  circuit breaker when consecutive jobs keep dying -- the signature of a
  sick substrate rather than an unlucky job.

Degraded mode is stream-aware: when a job shrinks the pool, the pool
*stays* shrunk while the queue is busy (survivors keep serving), and the
service heals it back to ``target_nprocs`` at the next idle moment.

A service on a :class:`~repro.backend.simulated.SimulatedBackend` is the
same code path minus process management -- the unit tests exercise queue
fairness, retries, and breaker logic there in milliseconds.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..backend.base import ExecutionBackend
from ..backend.chaos import classify_failure
from ..backend.process import ProcessBackend
from ..backend.solve import backend_solve
from ..backend.store import DurableCheckpointStore
from ..core.resilience import RecoveryExhaustedError
from ..hpcg.solve import hpcg_solve
from .breaker import CircuitBreaker, CircuitOpenError
from .journal import (
    QUARANTINED,
    JobJournal,
    JobQuarantinedError,
    new_idempotency_key,
)
from .pool import WarmPool
from .queue import ServiceOverloadedError, TenantFairQueue
from .retry import RetryPolicy
from .telemetry import AttemptRecord, JobStatus, ServiceCounters

__all__ = ["JobSpec", "JobResult", "JobHandle", "SolverService"]

#: classification label for breaker fast-fails (not a chaos label: the
#: job never touched the substrate)
CIRCUIT_OPEN = "circuit_open"
#: classification for jobs whose deadline expired while still queued
DEADLINE_EXPIRED = "deadline_expired"
#: classification for quarantined poison jobs
QUARANTINE = "quarantined"


# ---------------------------------------------------------------------- #
@dataclass
class JobSpec:
    """Everything needed to solve one system on the service.

    The solver/fault/resilience fields mirror
    :func:`~repro.backend.solve.backend_solve`; the service-level fields
    (``tenant``, ``deadline``, ``straggler_deadline``) control admission
    and per-job SLAs.  ``deadline`` is the hard wall-clock bound *per
    attempt* (the existing backend timeout machinery enforces it);
    ``None`` keeps the pool's default.

    HPCG jobs: ``scenario="stencil27"`` routes the attempt through
    :func:`~repro.hpcg.solve.hpcg_solve` on a ``shape`` grid with the
    ``precond`` preconditioner (``matrix``/``b`` may stay ``None`` -- the
    stencil and its all-ones-solution RHS are built from ``shape``).
    ``checkpoint_dir`` (either scenario) journals checkpoints to a
    :class:`~repro.backend.store.DurableCheckpointStore` there, so a job
    resubmitted after a service crash resumes from the newest complete
    checkpoint instead of iteration 0.
    """

    matrix: Any = None
    b: Optional[np.ndarray] = None
    tenant: str = "default"
    solver: str = "cg"
    nprocs: int = 4
    x0: Optional[np.ndarray] = None
    criterion: Optional[Any] = None
    fused: bool = False
    faults: Optional[Any] = None
    resilience: Optional[Any] = None
    policy: str = "respawn"
    min_ranks: int = 1
    deadline: Optional[float] = None
    straggler_deadline: Optional[float] = None
    heartbeat_interval: Optional[float] = None
    #: deterministic mid-solve crash triggers, ``{rank: iteration}``
    #: (consumed per attempt; each retry re-arms its own copy)
    crash_on_checkpoint: Dict[int, int] = field(default_factory=dict)
    #: ``"cg"`` (row-block solve of ``matrix``/``b``) or ``"stencil27"``
    #: (HPCG 27-point stencil built from ``shape``)
    scenario: str = "cg"
    shape: Optional[Any] = None
    precond: str = "mg"
    reproducible: bool = False
    abft: bool = False
    #: durable checkpoint directory; ``None`` keeps checkpoints in memory
    checkpoint_dir: Optional[str] = None
    #: client-supplied exactly-once key.  On a journaled service, a
    #: resubmission with the same key returns the recorded terminal
    #: result (or joins the live job) instead of re-running; ``None``
    #: gets a unique auto-key (journaled, but never deduped against).
    idempotency_key: Optional[str] = None


@dataclass
class JobResult:
    """Terminal verdict of one submitted job, with full attempt history."""

    job_id: int
    tenant: str
    status: str                       #: a :class:`JobStatus` value
    x: Optional[np.ndarray] = None
    iterations: int = 0
    nprocs_requested: int = 0
    nprocs_final: int = 0
    classification: str = ""          #: chaos-style failure label when failed
    error: str = ""
    attempts: List[AttemptRecord] = field(default_factory=list)
    elapsed: float = 0.0              #: execution wall time (sum of attempts)
    queued: float = 0.0               #: seconds spent waiting in the queue

    @property
    def ok(self) -> bool:
        return self.status in (JobStatus.OK, JobStatus.DEGRADED)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "status": self.status,
            "iterations": self.iterations,
            "nprocs_requested": self.nprocs_requested,
            "nprocs_final": self.nprocs_final,
            "classification": self.classification,
            "error": self.error,
            "attempts": [a.as_dict() for a in self.attempts],
            "elapsed": self.elapsed,
            "queued": self.queued,
        }


class JobHandle:
    """Caller-side future for a submitted job."""

    def __init__(self, job_id: int, tenant: str,
                 key: Optional[str] = None):
        self.job_id = job_id
        self.tenant = tenant
        self.key = key  #: idempotency key (set on journaled services)
        self._event = threading.Event()
        self._result: Optional[JobResult] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> JobResult:
        """Block until the job completes; raises ``TimeoutError`` if not."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} not finished within {timeout}s"
            )
        assert self._result is not None
        return self._result

    def _fulfil(self, result: JobResult) -> None:
        self._result = result
        self._event.set()


# ---------------------------------------------------------------------- #
class SolverService:
    """Long-lived solver service over a warm pool (or any backend).

    Parameters
    ----------
    backend:
        The execution substrate.  Default: a :class:`WarmPool` sized
        ``target_nprocs``.  A :class:`SimulatedBackend` works too (fast
        deterministic tests); pool-specific behaviours (heal, shutdown,
        per-job deadlines) degrade to no-ops on non-pool backends.
    target_nprocs:
        Home rank count; :meth:`SolverService.submit` defaults jobs to it
        and idle healing grows a shrunken pool back to it.
    queue:
        Admission-controlled job queue (default: ``TenantFairQueue()``).
    retry:
        Outer retry schedule (default: ``RetryPolicy()`` -- 3 attempts).
    breaker:
        Per-pool circuit breaker (default: trip after 3 consecutive
        infrastructure failures, 5 s reset).
    heal_between_jobs:
        Re-grow a shrunken/dead pool to ``target_nprocs`` whenever the
        queue goes idle (the degraded-mode contract: survivors keep
        serving a busy queue; healing happens between jobs).
    journal_dir:
        Directory for the write-ahead :class:`~repro.service.journal.JobJournal`.
        ``None`` (default) keeps service state in memory, as before.
        With a directory, every accepted job is journaled before it is
        queued, and :meth:`start` replays the journal: ACCEPTED jobs are
        re-enqueued in original tenant/FIFO order, the DISPATCHED job is
        re-run (resuming from its ``checkpoint_dir`` when it has one),
        terminal jobs answer resubmissions by idempotency key, and
        poison jobs are quarantined.
    journal_fsync:
        Fsync policy for journal records (same trade as the checkpoint
        store: ``True`` survives power loss, ``False`` survives kill).
    quarantine_after:
        Condemnation-evidence bound before a job is quarantined.  The
        default 2 means a job that crashed the pool or driver twice is
        never allowed to condemn a third generation.
    """

    def __init__(
        self,
        backend: Optional[ExecutionBackend] = None,
        target_nprocs: int = 4,
        queue: Optional[TenantFairQueue] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        heal_between_jobs: bool = True,
        journal_dir: Optional[str] = None,
        journal_fsync: bool = True,
        quarantine_after: int = 2,
    ):
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.target_nprocs = target_nprocs
        self._backend = (
            WarmPool(target_nprocs) if backend is None else backend
        )
        self.queue = queue if queue is not None else TenantFairQueue()
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.heal_between_jobs = heal_between_jobs
        self.quarantine_after = quarantine_after
        self.journal = (
            JobJournal(journal_dir, fsync=journal_fsync)
            if journal_dir else None
        )
        self.counters = ServiceCounters()
        self._next_job_id = 0
        self._id_lock = threading.Lock()
        #: live + recorded handles by idempotency key (journaled services)
        self._by_key: Dict[str, JobHandle] = {}
        self._key_lock = threading.Lock()
        self._stop = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatcher", daemon=True
        )
        self._started = False

    # -------------------------------------------------------------- #
    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def pool(self) -> Optional[WarmPool]:
        """The warm pool, when the backend is one (else ``None``)."""
        return self._backend if isinstance(self._backend, WarmPool) else None

    def start(self) -> "SolverService":
        if not self._started:
            self._started = True
            if self.journal is not None:
                self._replay_journal()
            self._dispatcher.start()
        return self

    def __enter__(self) -> "SolverService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -------------------------------------------------------------- #
    def _new_job_id(self) -> int:
        with self._id_lock:
            job_id = self._next_job_id
            self._next_job_id += 1
        return job_id

    def _replay_journal(self) -> None:
        """Re-enqueue the dead driver's accepted work, in accept order.

        Runs before the dispatcher thread exists, so no lock ordering to
        worry about.  Terminal jobs become recorded handles (dedupe
        targets); poison jobs are quarantined on the spot; everything
        else goes back on the queue exactly as the original ``submit``
        ordered it — the DISPATCHED job resumes from its
        ``checkpoint_dir``'s newest complete checkpoint when it has one.
        """
        for state in self.journal.states():
            key = state.key
            if state.terminal is not None:
                job_id = getattr(state.result, "job_id", None)
                if job_id is None:
                    job_id = self._new_job_id()
                handle = JobHandle(job_id, state.tenant, key=key)
                if state.result is not None:
                    handle._fulfil(state.result)
                else:
                    # terminal record without a recorded result (e.g. a
                    # torn/garbled result field): synthesize one so a
                    # deduped resubmission resolves instead of blocking
                    # on a handle nobody will ever fulfil.  A lost
                    # COMPLETED payload cannot honestly claim ``ok``
                    # (there is no solution vector to hand back), so
                    # everything but quarantine degrades to FAILED.
                    handle._fulfil(JobResult(
                        job_id=job_id, tenant=state.tenant,
                        status=(
                            JobStatus.QUARANTINED
                            if state.terminal == QUARANTINED
                            else JobStatus.FAILED
                        ),
                        classification="journal_result_missing",
                        error=(
                            f"journal records terminal state "
                            f"{state.terminal!r} but no result payload"
                        ),
                    ))
                self._by_key[key] = handle
                continue
            if not state.replayable:
                continue
            spec = state.spec
            job_id = self._new_job_id()
            handle = JobHandle(job_id, spec.tenant, key=key)
            self._by_key[key] = handle
            if state.condemnations >= self.quarantine_after:
                result = self._quarantine_result(
                    job_id, spec, state.condemnations
                )
                self.journal.quarantined(key, result)
                self.counters.quarantined += 1
                handle._fulfil(result)
                continue
            try:
                self.queue.put(spec.tenant, (spec, handle, time.monotonic()))
            except ServiceOverloadedError:
                # Queue smaller than the journal backlog: leave the job
                # ACCEPTED (non-terminal) so the *next* restart replays
                # it, and keep no handle so a live resubmission with the
                # same key re-attempts rather than seeing a rejection.
                self._by_key.pop(key, None)
                self.counters.rejected += 1
                continue
            self.counters.replayed += 1
            self._idle.clear()

    def _quarantine_result(self, job_id: int, spec: JobSpec,
                           condemnations: int) -> JobResult:
        err = JobQuarantinedError(
            spec.idempotency_key or "<auto>", condemnations,
            self.quarantine_after,
        )
        return JobResult(
            job_id=job_id, tenant=spec.tenant,
            status=JobStatus.QUARANTINED,
            nprocs_requested=spec.nprocs,
            classification=QUARANTINE,
            error=f"{type(err).__name__}: {err}",
        )

    # -------------------------------------------------------------- #
    def handle_for(self, key: str) -> Optional[JobHandle]:
        """The live or recorded handle for an idempotency key."""
        with self._key_lock:
            return self._by_key.get(key)

    def submit(self, spec: JobSpec) -> JobHandle:
        """Enqueue a job; raises :class:`ServiceOverloadedError` when full.

        On a journaled service the spec is journaled (write-ahead)
        before it is queued, and a resubmission whose
        ``idempotency_key`` is already known returns the existing
        handle — fulfilled with the recorded terminal result for
        finished jobs, live for queued/running ones — instead of
        running the job twice.
        """
        if not self._started:
            raise RuntimeError("service not started (call start())")
        key = spec.idempotency_key
        if self.journal is not None:
            with self._key_lock:
                if key is not None and key in self._by_key:
                    self.counters.deduped += 1
                    return self._by_key[key]
                if key is None:
                    key = new_idempotency_key()
                job_id = self._new_job_id()
                handle = JobHandle(job_id, spec.tenant, key=key)
                self._by_key[key] = handle
            # WAL: on disk as ACCEPTED before the queue (and hence the
            # dispatcher) can see it -- a crash after this line replays
            self.journal.accepted(key, spec)
        else:
            job_id = self._new_job_id()
            handle = JobHandle(job_id, spec.tenant, key=key)
        try:
            self.queue.put(spec.tenant, (spec, handle, time.monotonic()))
        except ServiceOverloadedError as exc:
            self.counters.rejected += 1
            if self.journal is not None:
                # A rejection is *not* terminal for idempotency: drop the
                # live handle so a later resubmission with the same key
                # re-attempts instead of deduping to a stale rejection.
                # The ACCEPTED record stays non-terminal on purpose --
                # like a parked job, a restart on this journal_dir will
                # replay it, so a submit racing graceful drain's
                # queue.close() is deferred, not lost.
                with self._key_lock:
                    self._by_key.pop(handle.key, None)
                handle._fulfil(JobResult(
                    job_id=handle.job_id, tenant=spec.tenant,
                    status=JobStatus.REJECTED,
                    nprocs_requested=spec.nprocs,
                    classification="overloaded",
                    error=f"{type(exc).__name__}: {exc}",
                ))
            raise
        self.counters.submitted += 1
        self._idle.clear()
        return handle

    def solve(self, spec: JobSpec,
              timeout: Optional[float] = None) -> JobResult:
        """Submit and wait: the synchronous convenience wrapper."""
        return self.submit(spec).result(timeout)

    # -------------------------------------------------------------- #
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, finish everything queued.  True when drained."""
        self.queue.close()
        return self._idle.wait(timeout)

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the service; optionally finish queued work first.

        With ``drain=False`` queued jobs are cancelled (their handles
        resolve with :data:`JobStatus.CANCELLED`).  Always leaves zero
        live pool workers.
        """
        self.queue.close()
        if drain and self._started:
            self._idle.wait(timeout)
        for spec, handle, t_in in self.queue.drain_remaining():
            handle._fulfil(JobResult(
                job_id=handle.job_id, tenant=spec.tenant,
                status=JobStatus.CANCELLED,
                nprocs_requested=spec.nprocs,
                queued=time.monotonic() - t_in,
            ))
        self._stop.set()
        if self._started:
            self._dispatcher.join(timeout=10.0)
        pool = self.pool
        if pool is not None:
            pool.shutdown()

    def graceful_drain(self, timeout: Optional[float] = None
                       ) -> Dict[str, Any]:
        """SIGTERM path: stop admitting, settle in-flight work, stop.

        The queue closes immediately (new submits are refused), the job
        the dispatcher already holds runs to completion, and every job
        still queued is **parked**: on a journaled service its handle
        resolves :data:`JobStatus.PARKED` and its journal entry stays
        ``accepted``, so a service restarted on the same ``journal_dir``
        replays it; without a journal parked degrades to cancelled.
        Returns a summary dict (``parked``/``cancelled``/``drained``)
        the CLI prints before exiting 0.
        """
        self.queue.close()
        parked = cancelled = 0
        for spec, handle, t_in in self.queue.drain_remaining():
            if self.journal is not None:
                # no terminal record on purpose: the job stays ACCEPTED
                # in the journal, which is exactly what replay re-runs
                self.counters.parked += 1
                parked += 1
                status, classification = JobStatus.PARKED, "parked"
                error = "graceful drain: journaled for replay on restart"
            else:
                cancelled += 1
                status, classification = JobStatus.CANCELLED, ""
                error = "graceful drain without a journal: job dropped"
            handle._fulfil(JobResult(
                job_id=handle.job_id, tenant=spec.tenant, status=status,
                nprocs_requested=spec.nprocs,
                classification=classification, error=error,
                queued=time.monotonic() - t_in,
            ))
        drained = self._idle.wait(timeout) if self._started else True
        self._stop.set()
        if self._started:
            self._dispatcher.join(timeout=10.0)
        pool = self.pool
        if pool is not None:
            pool.shutdown()
        return {
            "parked": parked,
            "cancelled": cancelled,
            "drained": bool(drained),
            "journal": None if self.journal is None else self.journal.path,
        }

    def status(self) -> Dict[str, Any]:
        """One observability snapshot: counters, queue, breaker, pool."""
        pool = self.pool
        return {
            "counters": self.counters.as_dict(),
            "queue_depth": len(self.queue),
            "queue_by_tenant": self.queue.depths(),
            "journal": None if self.journal is None else {
                "path": self.journal.path,
                "records": len(self.journal),
                "jobs": len(self.journal.states()),
                "skipped_records": len(self.journal.skipped_records),
            },
            "breaker": {
                "state": self.breaker.state,
                "trips": self.breaker.trips,
                "retry_after": round(self.breaker.retry_after(), 3),
            },
            "pool": None if pool is None else {
                "generation_size": pool.generation_size,
                "target_nprocs": pool.target_nprocs,
                "rebuilds": pool.rebuilds,
                "jobs_served": pool.jobs_served,
                "healthy": pool.healthy(),
            },
        }

    # -------------------------------------------------------------- #
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            item = self.queue.get(timeout=0.05)
            if item is None:
                if len(self.queue) == 0:
                    self._maybe_heal()
                    self._idle.set()
                    if self.queue._closed:  # drained after close: done
                        break
                continue
            spec, handle, t_in = item
            queued = time.monotonic() - t_in
            key = handle.key if self.journal is not None else None
            # deadline-aware admission: a job that already spent its
            # whole deadline in the queue fast-fails without ever
            # touching the pool (no generation burned on a lost cause)
            if spec.deadline is not None and queued > spec.deadline:
                result = JobResult(
                    job_id=handle.job_id, tenant=spec.tenant,
                    status=JobStatus.EXPIRED,
                    nprocs_requested=spec.nprocs,
                    classification=DEADLINE_EXPIRED,
                    error=(
                        f"deadline {spec.deadline:.3f}s already spent in "
                        f"the queue ({queued:.3f}s); pool untouched"
                    ),
                    queued=queued,
                )
                self.counters.expired += 1
                self.counters.failed += 1
                if key is not None:
                    self.journal.failed(key, result)
                handle._fulfil(result)
                continue
            # quarantine gate: poison jobs never get another generation
            if key is not None:
                evidence = self.journal.condemnations(key)
                if evidence >= self.quarantine_after:
                    result = self._quarantine_result(
                        handle.job_id, spec, evidence
                    )
                    result.queued = queued
                    self.counters.quarantined += 1
                    self.counters.failed += 1
                    self.journal.quarantined(key, result)
                    handle._fulfil(result)
                    continue
                self.journal.dispatched(key)
            t0 = time.monotonic()
            try:
                result = self._execute(spec, handle.job_id, key=key)
            except BaseException as exc:  # noqa: BLE001 - never kill the loop
                result = JobResult(
                    job_id=handle.job_id, tenant=spec.tenant,
                    status=JobStatus.FAILED,
                    nprocs_requested=spec.nprocs,
                    classification=classify_failure(exc) or "internal_error",
                    error=f"{type(exc).__name__}: {exc}",
                )
            result.queued = queued
            self.counters.busy_time += time.monotonic() - t0
            if result.status == JobStatus.OK:
                self.counters.completed += 1
            elif result.status == JobStatus.DEGRADED:
                self.counters.completed += 1
                self.counters.degraded += 1
            elif result.status == JobStatus.QUARANTINED:
                self.counters.quarantined += 1
                self.counters.failed += 1
            else:
                self.counters.failed += 1
            if key is not None:
                if result.ok:
                    self.journal.completed(key, result)
                elif result.status == JobStatus.QUARANTINED:
                    self.journal.quarantined(key, result)
                else:
                    self.journal.failed(key, result)
            handle._fulfil(result)
        self._idle.set()

    def _maybe_heal(self) -> None:
        """Idle-time pool healing: re-grow to target between jobs."""
        pool = self.pool
        if (
            self.heal_between_jobs
            and pool is not None
            and pool.generation_size > 0
            and (pool.generation_size != pool.target_nprocs
                 or not pool.healthy())
        ):
            pool.heal()
            self.counters.heals += 1

    # -------------------------------------------------------------- #
    def _execute(self, spec: JobSpec, job_id: int,
                 key: Optional[str] = None) -> JobResult:
        """Run one job through breaker, retry ladder, and recovery.

        On a journaled service (``key`` set), each *failed* attempt is
        journaled with a ``condemned`` flag (did it burn a warm-pool
        generation?); once the job's condemnation evidence reaches
        ``quarantine_after`` the retry ladder stops and the job is
        quarantined rather than offered a fresh generation.
        """
        result = JobResult(
            job_id=job_id, tenant=spec.tenant, status=JobStatus.FAILED,
            nprocs_requested=spec.nprocs,
        )
        trips_before = self.breaker.trips
        if not self.breaker.allow():
            self.counters.breaker_fast_fails += 1
            ra = self.breaker.retry_after()
            result.classification = CIRCUIT_OPEN
            result.error = (
                f"CircuitOpenError: breaker open; next probe in {ra:.2f}s"
            )
            return result

        attempt = 0
        while True:
            attempt += 1
            backoff = 0.0
            if attempt > 1:
                self.counters.retries += 1
                backoff = self.retry.backoff(attempt)
            rec = AttemptRecord(
                attempt=attempt, outcome="ok", nprocs=spec.nprocs,
                elapsed=0.0, backoff_before=backoff,
            )
            t0 = time.monotonic()
            pool = self.pool
            rebuilds_before = pool.rebuilds if pool is not None else 0
            try:
                solve = self._run_attempt(spec)
            except Exception as exc:  # noqa: BLE001 - classified below
                rec.elapsed = time.monotonic() - t0
                rec.outcome = classify_failure(exc) or "internal_error"
                rec.error = f"{type(exc).__name__}: {exc}"
                if isinstance(exc, RecoveryExhaustedError):
                    rec.recovery_log = list(exc.attempts)
                result.attempts.append(rec)
                result.elapsed += rec.elapsed
                self.breaker.record_failure()
                self.counters.breaker_trips += (
                    self.breaker.trips - trips_before
                )
                trips_before = self.breaker.trips
                if key is not None:
                    # only failed attempts hit the journal (the happy
                    # path stays at 3 records/job); condemned = this
                    # attempt cost the pool a generation
                    condemned = (
                        pool is not None
                        and pool.rebuilds > rebuilds_before
                    )
                    self.journal.attempt(
                        key, attempt, rec.outcome, condemned
                    )
                    evidence = self.journal.condemnations(key)
                    if evidence >= self.quarantine_after:
                        self._account_rebuilds(rebuilds_before)
                        quarantined = self._quarantine_result(
                            job_id, spec, evidence
                        )
                        quarantined.attempts = result.attempts
                        quarantined.elapsed = result.elapsed
                        return quarantined
                if self.retry.should_retry(attempt, exc):
                    self._account_rebuilds(rebuilds_before)
                    continue
                result.status = JobStatus.FAILED
                result.classification = rec.outcome
                result.error = rec.error
                self._account_rebuilds(rebuilds_before)
                return result
            rec.elapsed = time.monotonic() - t0
            recov = (solve.extras or {}).get("recovery") or {}
            rec.recovery_log = list(recov.get("attempt_log", []))
            result.attempts.append(rec)
            result.elapsed += rec.elapsed
            result.x = solve.x
            result.iterations = int(solve.iterations)
            result.nprocs_final = int(
                recov.get("final_nprocs", spec.nprocs)
            )
            result.status = (
                JobStatus.DEGRADED
                if result.nprocs_final < spec.nprocs
                else JobStatus.OK
            )
            self.breaker.record_success()
            self._account_rebuilds(rebuilds_before)
            return result

    def _account_rebuilds(self, rebuilds_before: int) -> None:
        pool = self.pool
        if pool is not None:
            self.counters.pool_rebuilds += pool.rebuilds - rebuilds_before

    def _run_attempt(self, spec: JobSpec):
        """One ``backend_solve`` execution with per-job knobs applied.

        Per-job SLA and fault knobs live on the *shared* backend
        instance (``backend_solve`` only applies them when constructing
        a backend from a string).  Each attempt snapshots every knob it
        touches and restores it on the way out -- including the
        conditionally-set ones (``timeout``, ``heartbeat_interval``),
        which previously leaked a job's deadline into every later job
        that did not set its own.
        """
        be = self._backend
        saved: Dict[str, Any] = {}
        if isinstance(be, ProcessBackend):
            saved = {
                "timeout": be.timeout,
                "heartbeat_interval": be.heartbeat_interval,
                "straggler_deadline": be.straggler_deadline,
                "crash_on_checkpoint": be.crash_on_checkpoint,
            }
            if spec.deadline is not None:
                be.timeout = spec.deadline
            if spec.heartbeat_interval is not None:
                be.heartbeat_interval = spec.heartbeat_interval
            be.straggler_deadline = spec.straggler_deadline
            # consumed-once triggers: re-arm a fresh copy per attempt
            be.crash_on_checkpoint = dict(spec.crash_on_checkpoint)
        elif hasattr(be, "faults"):  # SimulatedBackend
            saved = {
                "faults": be.faults,
                "straggler_deadline": getattr(
                    be, "straggler_deadline", None
                ),
            }
            # the substrate executes only the crash+slowdown share; the
            # message share is injected at the Comm boundary by
            # backend_solve itself
            be.faults = (
                spec.faults.substrate_plan()
                if spec.faults is not None else None
            )
            be.straggler_deadline = spec.straggler_deadline
        store = (
            DurableCheckpointStore(spec.checkpoint_dir)
            if spec.checkpoint_dir else None
        )
        try:
            if spec.scenario == "stencil27":
                if spec.shape is None:
                    raise ValueError("stencil27 jobs need a shape")
                return hpcg_solve(
                    spec.shape, backend=be, nprocs=spec.nprocs,
                    precond=spec.precond, fused=spec.fused,
                    reproducible=spec.reproducible, x0=spec.x0,
                    criterion=spec.criterion, matrix=spec.matrix,
                    b=spec.b, faults=spec.faults,
                    resilience=spec.resilience, policy=spec.policy,
                    min_ranks=spec.min_ranks, abft=spec.abft, store=store,
                )
            return backend_solve(
                spec.solver, spec.matrix, spec.b,
                backend=be, nprocs=spec.nprocs, x0=spec.x0,
                criterion=spec.criterion, faults=spec.faults,
                resilience=spec.resilience, policy=spec.policy,
                min_ranks=spec.min_ranks, fused=spec.fused,
                reproducible=spec.reproducible, store=store,
            )
        finally:
            for attr, value in saved.items():
                setattr(be, attr, value)
