"""Retry policy: exponential backoff with deterministic jitter.

The retry contract follows the reproducibility argument of PAPERS.md
("Reproducibility of Parallel Preconditioned Conjugate Gradient"): a
re-executed job is verifiably equivalent to the original (bitwise on an
unchanged rank count), so automating retries is safe -- the only
questions left are *which* failures deserve a retry and *when* to issue
it.

Which: infrastructure failures only -- crashes, stragglers, timeouts,
worker faults, exhausted in-attempt recovery.  A ``ValueError`` from bad
input will fail identically on every attempt; retrying it just burns the
pool.

When: exponential backoff (``base * multiplier**(attempt-1)`` capped at
``max_delay``) plus decorrelating jitter drawn from a *seeded* generator,
so tests replay the exact delay sequence and a thundering herd of
same-moment failures still spreads out.

Both the clock and the sleep are injectable: the unit tests drive a fake
clock and assert trip/backoff sequences without ever sleeping for real.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..backend.base import (
    BackendTimeoutError,
    WorkerCrashedError,
    WorkerFailedError,
)
from ..core.resilience import RecoveryExhaustedError
from ..machine.faults import (
    RankFailedError,
    RecvTimeoutError,
    StragglerDetectedError,
)
from ..machine.scheduler import DeadlockError

__all__ = ["RetryPolicy", "is_retryable"]

#: infrastructure failure types a retry can plausibly cure: the fault was
#: in the substrate (dead worker, stale heartbeat, lost message, wedged
#: run), not in the problem statement
_RETRYABLE = (
    WorkerCrashedError,
    WorkerFailedError,
    StragglerDetectedError,
    BackendTimeoutError,
    RecvTimeoutError,
    RankFailedError,
    DeadlockError,
    RecoveryExhaustedError,
)


def is_retryable(exc: BaseException) -> bool:
    """True when ``exc`` is an infrastructure failure worth re-running."""
    return isinstance(exc, _RETRYABLE)


@dataclass
class RetryPolicy:
    """Exponential backoff + jitter schedule for service-level retries.

    ``max_attempts`` bounds total executions (1 = no retries).  The delay
    before attempt ``k`` (k >= 2) is::

        min(max_delay, base_delay * multiplier**(k - 2)) * (1 + U * jitter)

    with ``U ~ Uniform[0, 1)`` from a generator seeded with ``seed`` --
    deterministic given the seed, decorrelated across policies.

    ``sleep`` and ``clock`` default to the real ``time`` module; tests
    inject fakes so no wall-clock time passes.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    # -------------------------------------------------------------- #
    def delay_before(self, attempt: int) -> float:
        """The backoff delay to sleep before executing ``attempt``.

        ``attempt`` is 1-based; the first attempt never waits.  Each call
        advances the jitter stream, so asking twice for the same attempt
        gives different jitter (by design: a *new* failure, a new draw).
        """
        if attempt <= 1:
            return 0.0
        exp = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (attempt - 2),
        )
        return float(exp * (1.0 + float(self._rng.random()) * self.jitter))

    def preview_delays(self) -> List[float]:
        """The undithered backoff ladder (no jitter, no stream advance)."""
        return [
            min(self.max_delay, self.base_delay * self.multiplier ** k)
            for k in range(self.max_attempts - 1)
        ]

    def should_retry(self, attempt: int, exc: BaseException) -> bool:
        """Retry after ``attempt`` failed with ``exc``?"""
        return attempt < self.max_attempts and is_retryable(exc)

    def backoff(self, attempt: int) -> float:
        """Sleep the attempt's backoff delay; returns the slept seconds."""
        delay = self.delay_before(attempt)
        if delay > 0:
            self.sleep(delay)
        return delay
