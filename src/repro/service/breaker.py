"""Per-pool circuit breaker: stop hammering a substrate that is down.

Retry-with-backoff protects one *job* from transient faults; the breaker
protects the *stream* from persistent ones.  When ``failure_threshold``
consecutive infrastructure failures accumulate (across jobs -- a pool
whose host is dying fails everything), the breaker opens and every
subsequent job fails fast with :class:`CircuitOpenError` -- a classified,
typed outcome -- instead of burning a full timeout + retry ladder each.
After ``reset_timeout`` seconds the breaker goes **half-open**: exactly
one probe job is admitted; success closes the circuit, failure re-opens
it for another full window.

State transitions (the classic three-state machine)::

    closed --[K consecutive failures]--> open
    open --[reset_timeout elapsed]--> half_open (one probe admitted)
    half_open --[probe ok]--> closed
    half_open --[probe failed]--> open

The clock is injectable so the transition tests run on a fake clock with
no real sleeps.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["CircuitBreaker", "CircuitOpenError", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(RuntimeError):
    """Fast-fail verdict: the pool's circuit breaker is open.

    Carries ``retry_after`` -- seconds until the breaker will admit a
    half-open probe -- so clients can schedule a resubmit instead of
    polling.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = max(0.0, retry_after)


class CircuitBreaker:
    """Trip after K consecutive infrastructure failures; heal via probes.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (any job, any attempt) that open the circuit.
    reset_timeout:
        Seconds the circuit stays open before admitting one half-open
        probe.
    clock:
        Monotonic-seconds callable; injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self.trips = 0  #: lifetime closed/half_open -> open transitions

    # -------------------------------------------------------------- #
    @property
    def state(self) -> str:
        """Current state, accounting for reset-timeout expiry."""
        if self._state == OPEN and self._ready_for_probe():
            return HALF_OPEN
        return self._state

    def _ready_for_probe(self) -> bool:
        return (
            self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        )

    def retry_after(self) -> float:
        """Seconds until a probe will be admitted (0 when not open)."""
        if self._state != OPEN or self._opened_at is None:
            return 0.0
        return max(
            0.0, self.reset_timeout - (self._clock() - self._opened_at)
        )

    # -------------------------------------------------------------- #
    def allow(self) -> bool:
        """May a job execute now?  Admits the single half-open probe."""
        if self._state == CLOSED:
            return True
        if self._ready_for_probe() and not self._probe_in_flight:
            self._state = HALF_OPEN
            self._probe_in_flight = True
            return True
        return False

    def check(self) -> None:
        """Like :meth:`allow`, raising :class:`CircuitOpenError` on refusal."""
        if not self.allow():
            ra = self.retry_after()
            raise CircuitOpenError(
                f"circuit breaker open after "
                f"{self._consecutive_failures} consecutive infrastructure "
                f"failures; probe admitted in {ra:.2f}s",
                retry_after=ra,
            )

    def record_success(self) -> None:
        """An execution finished healthy: close and reset the count."""
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = None
        self._probe_in_flight = False

    def record_failure(self) -> None:
        """An execution hit infrastructure failure: count, maybe trip."""
        self._consecutive_failures += 1
        if self._state == HALF_OPEN or (
            self._state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()
        elif self._state == OPEN and self._probe_in_flight:
            # a probe admitted via allow() without the state() read
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probe_in_flight = False
        self.trips += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures}/"
            f"{self.failure_threshold}, trips={self.trips})"
        )
