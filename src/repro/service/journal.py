"""Write-ahead job journal: the service's accepted work survives the driver.

PR 8's :class:`~repro.backend.store.DurableCheckpointStore` made *solver*
state survive a SIGKILLed driver; this module does the same for the
*service* state that used to live only in dispatcher memory — the queue
of accepted jobs and the identity of the one in flight.  A
:class:`~repro.service.service.SolverService` constructed with a
``journal_dir`` logs every job lifecycle transition as one durable
record, and a fresh service re-opening the same directory replays them:

* jobs that were **accepted** but never dispatched are re-enqueued in
  their original tenant/FIFO order;
* the job that was **dispatched** when the driver died is re-run — from
  its ``checkpoint_dir``'s newest complete checkpoint when it has one,
  from scratch when it does not;
* jobs with a **terminal** record (completed / failed / quarantined) are
  *not* re-run: a resubmission carrying the same idempotency key gets
  the recorded :class:`~repro.service.service.JobResult` back, which
  under ``reproducible=True`` is bitwise-identical to what a re-run
  would produce (the reproducibility contract of Iakymchuk et al. is
  what makes answering from the record honest);
* **poison** jobs — ones whose history shows they keep killing the
  substrate — are quarantined instead of replayed, so a job that
  SIGKILLs the driver cannot crash-loop the service forever.

Records reuse the checkpoint store's crash-safety recipe via
:mod:`repro.backend.records`: each transition is one CRC32-framed,
pickle-bodied file published by atomic tmp+fsync+rename, named by a
monotonic sequence number (``jrn-<seq>.rec``) that totally orders the
log.  Torn or bit-flipped records are skipped on load (collected in
``skipped_records``), leftover tmp files are swept — exactly the
store's guarantees, applied to service state.

**Condemnation evidence.**  "Crashing the pool" leaves two fingerprints
in the journal: a failed ``attempt`` record flagged ``condemned`` (the
attempt killed the warm-pool generation but the driver survived to log
it), and an **interrupted dispatch** — a ``dispatched`` record followed
by neither an attempt nor a terminal record, meaning the driver itself
died (or was killed) while the job ran.  A job's evidence count is the
sum of both; once it reaches the service's ``quarantine_after`` bound
(default 2) the job is never dispatched again — it must not get a third
generation to condemn.
"""

from __future__ import annotations

import os
import threading
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..backend.records import RecordCodec, atomic_write, sweep_tmp

__all__ = [
    "JobJournal",
    "JobState",
    "JobQuarantinedError",
    "ACCEPTED",
    "DISPATCHED",
    "ATTEMPT",
    "COMPLETED",
    "FAILED",
    "QUARANTINED",
    "new_idempotency_key",
]

_MAGIC = b"RPJRNL1\n"
_CODEC = RecordCodec(_MAGIC, "q")  # key = sequence number (int64)

#: lifecycle events, in the order a job meets them
ACCEPTED = "accepted"          #: admission succeeded; spec journaled
DISPATCHED = "dispatched"      #: the dispatcher handed it to the backend
ATTEMPT = "attempt"            #: one failed service-level attempt
COMPLETED = "completed"        #: terminal: converged (ok or degraded)
FAILED = "failed"              #: terminal: classified failure / expiry
QUARANTINED = "quarantined"    #: terminal: poison job, never re-run

_TERMINAL = frozenset((COMPLETED, FAILED, QUARANTINED))


class JobQuarantinedError(RuntimeError):
    """The job's history shows it keeps condemning the substrate.

    ``key`` is the job's idempotency key; ``condemnations`` the evidence
    count (condemned attempts + interrupted dispatches) that tripped the
    bound.
    """

    def __init__(self, key: str, condemnations: int, bound: int):
        super().__init__(
            f"job {key!r} quarantined: condemned the pool/driver "
            f"{condemnations} times (bound {bound}); refusing to let it "
            f"condemn another generation"
        )
        self.key = key
        self.condemnations = condemnations
        self.bound = bound


def _record_name(seq: int) -> str:
    return f"jrn-{seq:010d}.rec"


@dataclass
class JobState:
    """Folded per-key view of the journal: where one job stands."""

    key: str
    tenant: str = "default"
    accept_seq: int = -1              #: seq of the ACCEPTED record
    spec: Any = None                  #: the journaled JobSpec
    dispatches: int = 0               #: lifetime DISPATCHED records
    attempts: List[Dict[str, Any]] = field(default_factory=list)
    terminal: Optional[str] = None    #: a ``_TERMINAL`` event, or None
    result: Any = None                #: recorded JobResult when terminal
    #: condemnation evidence: condemned failed attempts plus dispatches
    #: that ended in neither an attempt nor a terminal record (the
    #: driver died mid-job)
    condemnations: int = 0
    #: True while a DISPATCHED record has seen no event since; at load
    #: end this means the driver died with the job in flight
    _dispatch_open: bool = field(default=False, repr=False)

    @property
    def replayable(self) -> bool:
        return self.terminal is None and self.spec is not None


class JobJournal:
    """Durable, totally-ordered log of job lifecycle transitions.

    One record file per transition; ``fsync=True`` (the default) makes a
    published record survive power loss, ``fsync=False`` trades that for
    speed and still survives process kill (the policy split the
    checkpoint store documents).

    Thread-safe: the service appends from both the client thread
    (``submit`` journals ACCEPTED) and the dispatcher thread (dispatch /
    attempt / terminal records), so sequence allocation, record
    publication, and the folded-state dicts are all guarded by one lock.
    Without it two appends could allocate the same seq and
    ``os.replace`` would silently drop one of the records.
    """

    def __init__(self, path: str, fsync: bool = True):
        self.path = os.fspath(path)
        self.fsync = bool(fsync)
        os.makedirs(self.path, exist_ok=True)
        self.skipped_records: List[str] = []
        self._states: Dict[str, JobState] = {}
        self._next_seq = 0
        self._records = 0
        self._lock = threading.Lock()
        self._load()

    # ------------------------------------------------------------------ #
    # load / fold
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        sweep_tmp(self.path)
        records = []
        for name in sorted(os.listdir(self.path)):
            if not (name.startswith("jrn-") and name.endswith(".rec")):
                continue
            try:
                with open(os.path.join(self.path, name), "rb") as fh:
                    raw = fh.read()
            except OSError:
                self.skipped_records.append(name)
                continue
            decoded = _CODEC.decode(raw)
            if decoded is None:
                self.skipped_records.append(name)
                continue
            (seq,), payload = decoded
            records.append((seq, payload))
        records.sort(key=lambda r: r[0])
        for seq, payload in records:
            self._fold(seq, payload)
            self._records += 1
            self._next_seq = max(self._next_seq, seq + 1)
        # a dispatch still open at load end: the driver died mid-job
        for state in self._states.values():
            if state._dispatch_open and state.terminal is None:
                state.condemnations += 1
                state._dispatch_open = False

    def _fold(self, seq: int, rec: Dict[str, Any]) -> None:
        key = rec["key"]
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = JobState(key=key)
        event = rec["event"]
        if event == ACCEPTED:
            state.accept_seq = seq
            state.spec = rec.get("spec")
            state.tenant = rec.get("tenant", "default")
        elif event == DISPATCHED:
            if state._dispatch_open:
                # re-dispatched with no attempt/terminal in between: the
                # previous driver died while this job was in flight
                state.condemnations += 1
            state.dispatches += 1
            state._dispatch_open = True
        elif event == ATTEMPT:
            state.attempts.append(
                {k: rec.get(k) for k in ("attempt", "outcome", "condemned")}
            )
            if rec.get("condemned"):
                state.condemnations += 1
            state._dispatch_open = False
        elif event in _TERMINAL:
            state.terminal = event
            state.result = rec.get("result")
            state._dispatch_open = False

    # ------------------------------------------------------------------ #
    # append
    # ------------------------------------------------------------------ #
    def _append(self, event: str, key: str, **fields: Any) -> int:
        rec = {"event": event, "key": key, **fields}
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            atomic_write(
                self.path, _record_name(seq), _CODEC.encode(rec, seq),
                fsync=self.fsync,
            )
            self._fold(seq, rec)
            self._records += 1
        return seq

    def accepted(self, key: str, spec: Any) -> int:
        """WAL step one: the spec is on disk before the queue sees it."""
        return self._append(
            ACCEPTED, key, spec=spec,
            tenant=getattr(spec, "tenant", "default"),
        )

    def dispatched(self, key: str) -> int:
        return self._append(DISPATCHED, key)

    def attempt(self, key: str, attempt: int, outcome: str,
                condemned: bool) -> int:
        """One *failed* service-level attempt (ok attempts end terminal)."""
        return self._append(
            ATTEMPT, key, attempt=attempt, outcome=outcome,
            condemned=bool(condemned),
        )

    def completed(self, key: str, result: Any) -> int:
        return self._append(COMPLETED, key, result=result)

    def failed(self, key: str, result: Any) -> int:
        return self._append(FAILED, key, result=result)

    def quarantined(self, key: str, result: Any) -> int:
        return self._append(QUARANTINED, key, result=result)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Records actually folded (skipped/corrupt ones don't count)."""
        with self._lock:
            return self._records

    def state(self, key: str) -> Optional[JobState]:
        with self._lock:
            return self._states.get(key)

    def states(self) -> List[JobState]:
        """Every job, in original acceptance order."""
        with self._lock:
            return sorted(
                self._states.values(), key=lambda s: s.accept_seq
            )

    def replayable(self) -> List[JobState]:
        """Jobs a restarted service must re-enqueue, in accept order."""
        return [s for s in self.states() if s.replayable]

    def terminal_result(self, key: str) -> Optional[Any]:
        """The recorded JobResult for a finished key, else ``None``."""
        with self._lock:
            state = self._states.get(key)
            if state is None or state.terminal is None:
                return None
            return state.result

    def condemnations(self, key: str) -> int:
        with self._lock:
            state = self._states.get(key)
            return 0 if state is None else state.condemnations

    def tmp_files(self) -> List[str]:
        """Leftover ``.tmp-*`` files (should always be empty)."""
        return sorted(
            n for n in os.listdir(self.path) if n.startswith(".tmp-")
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobJournal(path={self.path!r}, records={self._records}, "
            f"jobs={len(self._states)})"
        )


def new_idempotency_key() -> str:
    """A unique key for jobs the client did not key (no dedupe intent)."""
    return f"auto-{uuid.uuid4().hex}"
