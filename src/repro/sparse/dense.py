"""Dense two-dimensional storage.

Used when "the matrix is effectively dense" (the paper's computational
electromagnetics example) and by the dense-partitioning Scenarios 1 and 2
(Figures 3 and 4), where ``A`` is an ``n x n`` Fortran array distributed
``(BLOCK, *)`` or ``(*, BLOCK)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from .base import SparseMatrix

if TYPE_CHECKING:  # pragma: no cover
    from .coo import COOMatrix

__all__ = ["DenseMatrix"]


class DenseMatrix(SparseMatrix):
    """Thin wrapper giving a dense ndarray the common matrix interface."""

    def __init__(self, array: np.ndarray):
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError("dense matrix must be 2-D")
        self.array = array
        self.shape: Tuple[int, int] = array.shape

    @property
    def nnz(self) -> int:
        """Count of nonzero entries (a dense matrix stores all of them)."""
        return int(np.count_nonzero(self.array))

    @property
    def stored_elements(self) -> int:
        """All ``n * m`` stored elements, zeros included."""
        return self.array.size

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_vector(x, self.ncols)
        return self.array @ x

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_vector(x, self.nrows)
        return self.array.T @ x

    def diagonal(self) -> np.ndarray:
        return np.diagonal(self.array).copy()

    def to_coo(self) -> "COOMatrix":
        from .coo import COOMatrix

        return COOMatrix.from_dense(self.array)

    def to_dense(self) -> "DenseMatrix":
        return self

    def transpose(self) -> "DenseMatrix":
        return DenseMatrix(self.array.T.copy())

    def row_block(self, lo: int, hi: int) -> np.ndarray:
        """Rows ``lo:hi`` -- a rank's local block under (BLOCK, *)."""
        return self.array[lo:hi, :]

    def col_block(self, lo: int, hi: int) -> np.ndarray:
        """Columns ``lo:hi`` -- a rank's local block under (*, BLOCK)."""
        return self.array[:, lo:hi]
