"""Abstract base class for the sparse-matrix storage schemes of Section 3.

The paper considers the Compressed Sparse Column (CSC) and Compressed Sparse
Row (CSR) schemes "which can store any sparse matrix", plus the dense
two-dimensional representation.  Every format here implements the same small
interface -- ``matvec`` (``A @ x``), ``rmatvec`` (``A.T @ x``, needed by
BiCG), conversions, and shape/nnz metadata -- so the solver layer is format
agnostic.

All kernels are vectorised NumPy (no Python-level per-element loops), per
the owner-computes local kernels an HPF compiler would generate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .coo import COOMatrix
    from .csc import CSCMatrix
    from .csr import CSRMatrix
    from .dense import DenseMatrix

__all__ = ["SparseMatrix"]


class SparseMatrix(ABC):
    """Common interface of all matrix storage schemes."""

    #: (nrows, ncols)
    shape: Tuple[int, int]

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    @abstractmethod
    def nnz(self) -> int:
        """Number of explicitly stored entries."""

    @property
    @abstractmethod
    def dtype(self) -> np.dtype:
        """Element dtype."""

    # ------------------------------------------------------------------ #
    # numerics
    # ------------------------------------------------------------------ #
    @abstractmethod
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Return ``A @ x``."""

    @abstractmethod
    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Return ``A.T @ x`` (the transpose product BiCG requires)."""

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(np.asarray(x))

    def diagonal(self) -> np.ndarray:
        """Main diagonal as a dense vector (zeros where unstored)."""
        return self.to_coo().diagonal()

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    @abstractmethod
    def to_coo(self) -> "COOMatrix":
        """Convert to coordinate format."""

    def to_csr(self) -> "CSRMatrix":
        return self.to_coo().to_csr()

    def to_csc(self) -> "CSCMatrix":
        return self.to_coo().to_csc()

    def to_dense(self) -> "DenseMatrix":
        return self.to_coo().to_dense()

    def toarray(self) -> np.ndarray:
        """Dense ``ndarray`` copy of the matrix."""
        return self.to_dense().array.copy()

    def to_scipy(self):
        """Convert to a ``scipy.sparse`` matrix (used as a test oracle)."""
        import scipy.sparse as sp

        coo = self.to_coo()
        return sp.coo_matrix(
            (coo.data, (coo.rows, coo.cols)), shape=self.shape
        ).tocsr()

    # ------------------------------------------------------------------ #
    # validation helpers
    # ------------------------------------------------------------------ #
    def _check_vector(self, x: np.ndarray, length: int) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 1 or x.shape[0] != length:
            raise ValueError(
                f"vector of length {length} required, got shape {x.shape}"
            )
        return x

    @staticmethod
    def _check_shape(shape: Tuple[int, int]) -> Tuple[int, int]:
        nrows, ncols = int(shape[0]), int(shape[1])
        if nrows < 0 or ncols < 0:
            raise ValueError(f"invalid shape {shape}")
        return nrows, ncols

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz}, "
            f"dtype={self.dtype})"
        )
