"""Compressed Sparse Column (CSC) storage -- the paper's Figure 1 scheme.

Three arrays store an ``n x n`` sparse matrix with ``nz`` nonzeros:

* ``a(nz)``   -- the nonzero elements in column order (columns 1..n),
* ``row(nz)`` -- the row number of each nonzero element,
* ``col(n+1)``-- the j-th entry points at the first entry of column j.

Internally 0-based ``indptr`` / ``indices`` / ``data``;
:meth:`fortran_arrays` reproduces the 1-based trio exactly as drawn in
Figure 1 (verified by benchmark E1 against the worked 6x6 example).

The CSC mat-vec is the loop the whole Section-5.1 extension discussion is
about: ``q(row(k)) = q(row(k)) + a(k) * p(j)`` scatters into ``q`` through
the indirection array ``row``, a many-to-one pattern that HPF-1's FORALL
and INDEPENDENT cannot express in parallel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from .base import SparseMatrix

if TYPE_CHECKING:  # pragma: no cover
    from .coo import COOMatrix
    from .csr import CSRMatrix

__all__ = ["CSCMatrix"]


class CSCMatrix(SparseMatrix):
    """CSC matrix defined by ``indptr`` (n+1), ``indices`` (nnz), ``data`` (nnz)."""

    def __init__(self, indptr, indices, data, shape: Tuple[int, int] = None):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if indptr.ndim != 1 or indices.ndim != 1 or data.ndim != 1:
            raise ValueError("indptr, indices, data must be 1-D")
        if indices.shape != data.shape:
            raise ValueError("indices and data must have equal length")
        ncols = indptr.size - 1
        if ncols < 0:
            raise ValueError("indptr must have at least one entry")
        if shape is None:
            nrows = int(indices.max()) + 1 if indices.size else 0
            shape = (nrows, ncols)
        self.shape = self._check_shape(shape)
        if self.shape[1] != ncols:
            raise ValueError(
                f"indptr implies {ncols} columns but shape says {self.shape[1]}"
            )
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if (np.diff(indptr) < 0).any():
            raise ValueError("indptr must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= self.shape[0]):
            raise ValueError("row index out of bounds")
        self.indptr = indptr
        self.indices = indices
        self.data = data

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def col_lengths(self) -> np.ndarray:
        """Number of stored entries in each column."""
        return np.diff(self.indptr)

    def expanded_cols(self) -> np.ndarray:
        """Column index of every stored entry (length nnz)."""
        return np.repeat(
            np.arange(self.ncols, dtype=np.int64), self.col_lengths()
        )

    # ------------------------------------------------------------------ #
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``q(row(k)) += a(k) * x(j)``: the scatter loop of Section 5.1."""
        x = self._check_vector(x, self.ncols)
        y = np.zeros(self.nrows, dtype=np.result_type(self.dtype, x.dtype))
        np.add.at(y, self.indices, self.data * x[self.expanded_cols()])
        return y

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``A.T @ x``: per-column gather, no scatter dependency."""
        x = self._check_vector(x, self.nrows)
        y = np.zeros(self.ncols, dtype=np.result_type(self.dtype, x.dtype))
        np.add.at(y, self.expanded_cols(), self.data * x[self.indices])
        return y

    def diagonal(self) -> np.ndarray:
        d = np.zeros(min(self.shape), dtype=self.dtype)
        cols = self.expanded_cols()
        mask = cols == self.indices
        np.add.at(d, cols[mask], self.data[mask])
        return d

    def col_slice(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """(row indices, values) of column ``j``."""
        if not 0 <= j < self.ncols:
            raise IndexError(f"column {j} out of range")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    # ------------------------------------------------------------------ #
    def to_coo(self) -> "COOMatrix":
        from .coo import COOMatrix

        return COOMatrix(
            self.indices,
            self.expanded_cols(),
            self.data,
            shape=self.shape,
            sum_duplicates=False,
        )

    def to_csc(self) -> "CSCMatrix":
        return self

    def transpose(self) -> "CSRMatrix":
        """``A.T`` for free: reinterpret the same arrays as CSR."""
        from .csr import CSRMatrix

        return CSRMatrix(
            self.indptr,
            self.indices,
            self.data,
            shape=(self.ncols, self.nrows),
        )

    # ------------------------------------------------------------------ #
    def fortran_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The paper's 1-based Figure-1 trio ``(a, row, col)``.

        Returns ``(a, row, col)`` in the order the figure labels them:
        values in column order, 1-based row numbers, and the 1-based
        column-pointer array of length ``n + 1``.
        """
        return self.data.copy(), self.indices + 1, self.indptr + 1

    @classmethod
    def from_fortran_arrays(
        cls, a, row, col, shape: Tuple[int, int] = None
    ) -> "CSCMatrix":
        """Build from the paper's 1-based ``(a, row, col)`` arrays."""
        row = np.asarray(row, dtype=np.int64)
        col = np.asarray(col, dtype=np.int64)
        return cls(col - 1, row - 1, a, shape=shape)
