"""Format conversion helpers and scipy interop.

Dense-vs-sparse storage choice is the starting point of the paper's Section
3; these helpers let the solver layer and the tests move any matrix between
all four schemes (COO, CSR, CSC, dense) and to/from ``scipy.sparse``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .base import SparseMatrix
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix
from .dense import DenseMatrix

__all__ = ["as_format", "from_scipy", "as_matrix", "storage_words"]

_FORMATS = {
    "coo": lambda m: m.to_coo(),
    "csr": lambda m: m.to_csr(),
    "csc": lambda m: m.to_csc(),
    "dense": lambda m: m.to_dense(),
}


def as_format(matrix: SparseMatrix, fmt: str) -> SparseMatrix:
    """Convert ``matrix`` to format ``fmt`` (``coo``/``csr``/``csc``/``dense``)."""
    try:
        return _FORMATS[fmt.lower()](matrix)
    except KeyError:
        raise ValueError(
            f"unknown format {fmt!r}; expected one of {sorted(_FORMATS)}"
        ) from None


def from_scipy(sp_matrix) -> CSRMatrix:
    """Convert any ``scipy.sparse`` matrix to our CSR format."""
    coo = sp_matrix.tocoo()
    return COOMatrix(
        coo.row.astype(np.int64),
        coo.col.astype(np.int64),
        coo.data.astype(np.float64),
        shape=coo.shape,
    ).to_csr()


def as_matrix(obj: Union[SparseMatrix, np.ndarray]) -> SparseMatrix:
    """Accept a matrix object, dense ndarray, or scipy matrix uniformly."""
    if isinstance(obj, SparseMatrix):
        return obj
    if isinstance(obj, np.ndarray):
        return DenseMatrix(obj)
    if hasattr(obj, "tocoo"):  # scipy.sparse
        return from_scipy(obj)
    raise TypeError(f"cannot interpret {type(obj).__name__} as a matrix")


def storage_words(matrix: SparseMatrix) -> float:
    """Words of memory the storage scheme needs (Section 3's saving).

    Dense: ``n*m`` value words.  CSR/CSC: ``nnz`` values + ``nnz`` indices +
    ``n+1`` pointers.  COO: ``3 * nnz``.  Integer words are counted at full
    word size, matching the paper's storage argument.
    """
    if isinstance(matrix, DenseMatrix):
        return float(matrix.stored_elements)
    if isinstance(matrix, CSRMatrix):
        return float(2 * matrix.nnz + matrix.nrows + 1)
    if isinstance(matrix, CSCMatrix):
        return float(2 * matrix.nnz + matrix.ncols + 1)
    if isinstance(matrix, COOMatrix):
        return float(3 * matrix.nnz)
    raise TypeError(f"unknown matrix type {type(matrix).__name__}")
