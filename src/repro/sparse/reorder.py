"""Matrix reordering: reverse Cuthill--McKee bandwidth reduction.

Section 5.2.2's irregular matrices defeat contiguous distributions partly
because their nonzeros scatter across the index space.  A symmetric
permutation that clusters the nonzeros near the diagonal (reverse
Cuthill--McKee) shrinks both the bandwidth and -- under a BLOCK row
distribution -- the shadow regions a halo exchange must move.  The E17
ablation uses this to show how much of the irregular-matrix penalty is
*ordering* rather than structure.

Built on ``networkx.utils.reverse_cuthill_mckee_ordering`` over the
symmetrised sparsity graph.
"""

from __future__ import annotations

import numpy as np

from .base import SparseMatrix
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["rcm_permutation", "permute_symmetric", "reorder_rcm"]


def rcm_permutation(matrix: SparseMatrix) -> np.ndarray:
    """Reverse Cuthill--McKee ordering of the symmetrised sparsity graph.

    Returns ``perm`` such that row/column ``perm[i]`` of the original
    matrix becomes row/column ``i`` of the reordered one.
    """
    import networkx as nx

    if matrix.nrows != matrix.ncols:
        raise ValueError("RCM needs a square matrix")
    coo = matrix.to_coo()
    g = nx.Graph()
    g.add_nodes_from(range(matrix.nrows))
    off = coo.rows != coo.cols
    g.add_edges_from(zip(coo.rows[off].tolist(), coo.cols[off].tolist()))
    order = list(nx.utils.rcm.reverse_cuthill_mckee_ordering(g))
    return np.asarray(order, dtype=np.int64)


def permute_symmetric(matrix: SparseMatrix, perm: np.ndarray) -> CSRMatrix:
    """Apply the symmetric permutation ``P A P^T`` given by ``perm``.

    ``perm[i]`` is the original index that lands at position ``i``; the
    result satisfies ``B[i, j] == A[perm[i], perm[j]]``.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = matrix.nrows
    if matrix.nrows != matrix.ncols:
        raise ValueError("symmetric permutation needs a square matrix")
    if sorted(perm.tolist()) != list(range(n)):
        raise ValueError("perm must be a permutation of 0..n-1")
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n, dtype=np.int64)
    coo = matrix.to_coo()
    return COOMatrix(
        inverse[coo.rows], inverse[coo.cols], coo.data, (n, n)
    ).to_csr()


def reorder_rcm(matrix: SparseMatrix):
    """Convenience: RCM-reorder a matrix.

    Returns ``(reordered, perm)``; solve in the permuted space with
    ``b_perm = b[perm]`` and map back with ``x = x_perm[inverse]`` (i.e.
    ``x[perm] = x_perm`` componentwise: ``x_original = x_perm`` scattered
    through ``perm``).
    """
    perm = rcm_permutation(matrix)
    return permute_symmetric(matrix, perm), perm
