"""Sparse matrix storage schemes and generators (paper Section 3).

Formats: :class:`COOMatrix`, :class:`CSRMatrix`, :class:`CSCMatrix`,
:class:`DenseMatrix`, all sharing the :class:`SparseMatrix` interface.
Generators cover every application family the paper's introduction cites;
:func:`~repro.sparse.generators.figure1_matrix` is the worked Figure-1
example.
"""

from .base import SparseMatrix
from .convert import as_format, as_matrix, from_scipy, storage_words
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix
from .dense import DenseMatrix
from .generators import (
    circuit_nodal,
    convection_diffusion_1d,
    nonsymmetric_diag_dominant,
    figure1_matrix,
    irregular_powerlaw,
    matrix_with_eigenvalues,
    nas_cg_style,
    poisson1d,
    poisson2d,
    random_sparse_symmetric,
    rhs_for_solution,
    stencil27,
    structural_truss,
    tridiagonal,
)
from .mmio import read_matrix_market, write_matrix_market
from .reorder import permute_symmetric, rcm_permutation, reorder_rcm
from .properties import (
    RowStats,
    bandwidth,
    is_diagonally_dominant,
    is_positive_definite,
    is_symmetric,
    nnz_imbalance,
    row_length_stats,
)

__all__ = [
    "SparseMatrix",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "DenseMatrix",
    "as_format",
    "as_matrix",
    "from_scipy",
    "storage_words",
    "figure1_matrix",
    "tridiagonal",
    "poisson1d",
    "poisson2d",
    "stencil27",
    "structural_truss",
    "circuit_nodal",
    "nas_cg_style",
    "irregular_powerlaw",
    "matrix_with_eigenvalues",
    "convection_diffusion_1d",
    "nonsymmetric_diag_dominant",
    "random_sparse_symmetric",
    "rhs_for_solution",
    "rcm_permutation",
    "permute_symmetric",
    "reorder_rcm",
    "read_matrix_market",
    "write_matrix_market",
    "is_symmetric",
    "is_positive_definite",
    "is_diagonally_dominant",
    "bandwidth",
    "RowStats",
    "row_length_stats",
    "nnz_imbalance",
]
