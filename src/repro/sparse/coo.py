"""Coordinate (COO) storage: explicit ``(row, col, value)`` triples.

COO is the interchange format: every other scheme converts through it.
Duplicate coordinates are summed on normalisation, matching the behaviour
of assembly in finite-element applications the paper's introduction cites
(structural analysis, fluid dynamics).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from .base import SparseMatrix

if TYPE_CHECKING:  # pragma: no cover
    from .csc import CSCMatrix
    from .csr import CSRMatrix
    from .dense import DenseMatrix

__all__ = ["COOMatrix"]


class COOMatrix(SparseMatrix):
    """Coordinate-format sparse matrix.

    Parameters
    ----------
    rows, cols, data:
        Parallel arrays of equal length: ``A[rows[k], cols[k]] = data[k]``.
    shape:
        Matrix shape; inferred from the maximum indices if omitted.
    sum_duplicates:
        When True (default) repeated coordinates are combined by addition.
    """

    def __init__(
        self,
        rows,
        cols,
        data,
        shape: Tuple[int, int] = None,
        sum_duplicates: bool = True,
    ):
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if not (rows.shape == cols.shape == data.shape) or rows.ndim != 1:
            raise ValueError("rows, cols, data must be equal-length 1-D arrays")
        if shape is None:
            nrows = int(rows.max()) + 1 if rows.size else 0
            ncols = int(cols.max()) + 1 if cols.size else 0
            shape = (nrows, ncols)
        self.shape = self._check_shape(shape)
        if rows.size:
            if rows.min() < 0 or rows.max() >= self.shape[0]:
                raise ValueError("row index out of bounds")
            if cols.min() < 0 or cols.max() >= self.shape[1]:
                raise ValueError("column index out of bounds")
        if sum_duplicates and rows.size:
            # canonical order: row-major, summing duplicates
            order = np.lexsort((cols, rows))
            rows, cols, data = rows[order], cols[order], data[order]
            is_new = np.ones(rows.size, dtype=bool)
            is_new[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            group = np.cumsum(is_new) - 1
            out_data = np.zeros(int(group[-1]) + 1, dtype=np.float64)
            np.add.at(out_data, group, data)
            rows, cols, data = rows[is_new], cols[is_new], out_data
        self.rows = rows
        self.cols = cols
        self.data = data

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    # ------------------------------------------------------------------ #
    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_vector(x, self.ncols)
        y = np.zeros(self.nrows, dtype=np.result_type(self.dtype, x.dtype))
        np.add.at(y, self.rows, self.data * x[self.cols])
        return y

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_vector(x, self.nrows)
        y = np.zeros(self.ncols, dtype=np.result_type(self.dtype, x.dtype))
        np.add.at(y, self.cols, self.data * x[self.rows])
        return y

    def diagonal(self) -> np.ndarray:
        d = np.zeros(min(self.shape), dtype=self.dtype)
        mask = self.rows == self.cols
        np.add.at(d, self.rows[mask], self.data[mask])
        return d

    # ------------------------------------------------------------------ #
    def to_coo(self) -> "COOMatrix":
        return self

    def to_csr(self) -> "CSRMatrix":
        from .csr import CSRMatrix

        order = np.lexsort((self.cols, self.rows))
        rows = self.rows[order]
        indptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(
            indptr, self.cols[order], self.data[order], shape=self.shape
        )

    def to_csc(self) -> "CSCMatrix":
        from .csc import CSCMatrix

        order = np.lexsort((self.rows, self.cols))
        cols = self.cols[order]
        indptr = np.zeros(self.ncols + 1, dtype=np.int64)
        np.add.at(indptr, cols + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSCMatrix(
            indptr, self.rows[order], self.data[order], shape=self.shape
        )

    def to_dense(self) -> "DenseMatrix":
        from .dense import DenseMatrix

        out = np.zeros(self.shape, dtype=self.dtype)
        np.add.at(out, (self.rows, self.cols), self.data)
        return DenseMatrix(out)

    def transpose(self) -> "COOMatrix":
        """Return ``A.T`` in COO form."""
        return COOMatrix(
            self.cols, self.rows, self.data, shape=(self.ncols, self.nrows)
        )

    @classmethod
    def from_dense(cls, array: np.ndarray, tol: float = 0.0) -> "COOMatrix":
        """Extract the entries of a dense array with ``|a_ij| > tol``."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError("dense array must be 2-D")
        rows, cols = np.nonzero(np.abs(array) > tol)
        return cls(rows, cols, array[rows, cols], shape=array.shape)
