"""Matrix generators for every application family the paper names.

The introduction motivates CG with "structural analysis, fluid dynamics,
aerodynamics, lattice gauge simulation, and circuit simulation" plus the
NAS/PARKBENCH benchmark matrices; Section 5.2.2 motivates irregular
distributions with "a very irregular grid model in which some grid points
may have many neighbours, while others have very few".  Each generator here
produces a deterministic instance of one of those families:

* :func:`poisson1d` / :func:`poisson2d` -- PDE model problems (CFD pressure
  solves, aerodynamics);
* :func:`stencil27` -- the HPCG-class 3-D 27-point stencil operator;
* :func:`structural_truss` -- spring/truss stiffness matrices (structural
  analysis);
* :func:`circuit_nodal` -- conductance matrices from nodal analysis of a
  random resistor network (circuit simulation);
* :func:`nas_cg_style` -- random sparse SPD matrices in the spirit of the
  NAS CG kernel;
* :func:`irregular_powerlaw` -- skewed-degree graph Laplacians that defeat
  uniform BLOCK distributions (Section 5.2.2);
* :func:`matrix_with_eigenvalues` -- dense SPD with a prescribed spectrum,
  for the "CG converges in at most n_e iterations" claim (Section 2.1);
* :func:`convection_diffusion_1d` -- nonsymmetric systems for the BiCG /
  CGS / BiCGSTAB family (Section 2.1);
* :func:`figure1_matrix` -- the exact 6x6 worked example of Figure 1.

All randomness flows through ``numpy.random.default_rng(seed)``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix
from .dense import DenseMatrix

__all__ = [
    "figure1_matrix",
    "tridiagonal",
    "poisson1d",
    "poisson2d",
    "stencil27",
    "structural_truss",
    "circuit_nodal",
    "nas_cg_style",
    "irregular_powerlaw",
    "matrix_with_eigenvalues",
    "convection_diffusion_1d",
    "nonsymmetric_diag_dominant",
    "random_sparse_symmetric",
    "rhs_for_solution",
]


def figure1_matrix() -> CSRMatrix:
    """The 6x6 sparse matrix of the paper's Figure 1.

    Entry ``a_ij`` is encoded as the value ``10*i + j`` (1-based), so e.g.
    ``a51 = 51.0``; this makes the CSC array contents directly checkable
    against the figure.
    """
    entries = [
        (1, 1), (1, 2), (1, 5),
        (2, 1), (2, 2), (2, 4), (2, 6),
        (3, 1), (3, 3),
        (4, 2), (4, 4),
        (5, 1), (5, 5),
        (6, 2), (6, 6),
    ]
    rows = [i - 1 for i, _ in entries]
    cols = [j - 1 for _, j in entries]
    data = [10.0 * i + j for i, j in entries]
    return COOMatrix(rows, cols, data, shape=(6, 6)).to_csr()


def tridiagonal(
    n: int, lower: float = -1.0, diag: float = 2.0, upper: float = -1.0
) -> CSRMatrix:
    """Constant-coefficient tridiagonal matrix."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rows, cols, data = [], [], []
    idx = np.arange(n)
    rows.append(idx)
    cols.append(idx)
    data.append(np.full(n, diag))
    if n > 1:
        rows.append(idx[1:])
        cols.append(idx[:-1])
        data.append(np.full(n - 1, lower))
        rows.append(idx[:-1])
        cols.append(idx[1:])
        data.append(np.full(n - 1, upper))
    return COOMatrix(
        np.concatenate(rows), np.concatenate(cols), np.concatenate(data), (n, n)
    ).to_csr()


def poisson1d(n: int) -> CSRMatrix:
    """1-D Poisson (second difference) matrix: SPD, tridiag(-1, 2, -1)."""
    return tridiagonal(n, -1.0, 2.0, -1.0)


def poisson2d(nx: int, ny: Optional[int] = None) -> CSRMatrix:
    """2-D five-point Poisson operator on an ``nx x ny`` grid (SPD).

    The canonical CFD pressure-correction matrix; size ``n = nx * ny``.
    """
    if ny is None:
        ny = nx
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be >= 1")
    n = nx * ny
    ids = np.arange(n).reshape(nx, ny)
    rows, cols, data = [ids.ravel()], [ids.ravel()], [np.full(n, 4.0)]

    def couple(a, b):
        rows.append(a.ravel())
        cols.append(b.ravel())
        data.append(np.full(a.size, -1.0))
        rows.append(b.ravel())
        cols.append(a.ravel())
        data.append(np.full(a.size, -1.0))

    if nx > 1:
        couple(ids[:-1, :], ids[1:, :])
    if ny > 1:
        couple(ids[:, :-1], ids[:, 1:])
    return COOMatrix(
        np.concatenate(rows), np.concatenate(cols), np.concatenate(data), (n, n)
    ).to_csr()


def stencil27(
    nx: int, ny: Optional[int] = None, nz: Optional[int] = None
) -> CSRMatrix:
    """3-D 27-point stencil operator on an ``nx x ny x nz`` grid (SPD).

    The HPCG-class workload: every interior point couples to its 26
    neighbours (faces, edges *and* corners) with weight ``-1`` and carries
    the diagonal ``26``.  Boundary rows keep the full diagonal, so every row
    is (weakly, and at the boundary strictly) diagonally dominant and the
    operator is SPD -- the same convention the HPCG reference code uses.

    Grid point ``(ix, iy, iz)`` has global id ``(iz*ny + iy)*nx + ix``,
    i.e. ``x`` is the fastest-varying axis; a 3-D BLOCK distribution over a
    process grid therefore owns subcubes of contiguous ``x``-runs, and rank
    programs exchange faces, edges and corners
    (see :class:`repro.hpf.distribution.Grid3DBlock`).
    """
    if ny is None:
        ny = nx
    if nz is None:
        nz = ny
    if nx < 1 or ny < 1 or nz < 1:
        raise ValueError("grid dimensions must be >= 1")
    n = nx * ny * nz
    ids = np.arange(n).reshape(nz, ny, nx)
    rows, cols, data = [ids.ravel()], [ids.ravel()], [np.full(n, 26.0)]

    def couple(a, b):
        rows.append(a.ravel())
        cols.append(b.ravel())
        data.append(np.full(a.size, -1.0))
        rows.append(b.ravel())
        cols.append(a.ravel())
        data.append(np.full(a.size, -1.0))

    def span(d):
        # (source, shifted) slices along one axis for a unit offset d
        if d == 0:
            return slice(None), slice(None)
        if d == 1:
            return slice(None, -1), slice(1, None)
        return slice(1, None), slice(None, -1)

    # 13 lexicographically-positive offsets; couple() adds both directions,
    # covering all 26 neighbours exactly once per unordered pair
    for dz in (0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                if (dz, dy, dx) <= (0, 0, 0):
                    continue
                src = tuple(span(d)[0] for d in (dz, dy, dx))
                dst = tuple(span(d)[1] for d in (dz, dy, dx))
                couple(ids[src], ids[dst])
    return COOMatrix(
        np.concatenate(rows), np.concatenate(cols), np.concatenate(data), (n, n)
    ).to_csr()


def structural_truss(n_nodes: int, seed: int = 0) -> CSRMatrix:
    """Stiffness matrix of a 1-D chain truss with random element stiffness.

    Each adjacent node pair is connected by a spring with stiffness drawn
    from ``U(0.5, 2.0)``; ends are anchored, so the assembled matrix is SPD.
    A stand-in for the structural-analysis workloads the paper cites.
    """
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = np.random.default_rng(seed)
    k = rng.uniform(0.5, 2.0, size=n_nodes - 1)
    rows, cols, data = [], [], []
    for e in range(n_nodes - 1):
        i, j = e, e + 1
        rows += [i, j, i, j]
        cols += [i, j, j, i]
        data += [k[e], k[e], -k[e], -k[e]]
    # anchor both ends (adds boundary stiffness -> strictly SPD)
    rows += [0, n_nodes - 1]
    cols += [0, n_nodes - 1]
    data += [1.0, 1.0]
    return COOMatrix(rows, cols, data, (n_nodes, n_nodes)).to_csr()


def circuit_nodal(n_nodes: int, avg_degree: float = 4.0, seed: int = 0) -> CSRMatrix:
    """Nodal-analysis conductance matrix of a random resistor network.

    Builds a connected random graph with roughly ``avg_degree`` edges per
    node, conductances drawn log-uniformly over two decades, plus a small
    conductance to ground at every node.  The result (weighted Laplacian +
    diagonal) is SPD -- the circuit-simulation workload of the paper's
    introduction.
    """
    import networkx as nx

    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = np.random.default_rng(seed)
    m_edges = max(n_nodes - 1, int(round(avg_degree * n_nodes / 2.0)))
    g = nx.gnm_random_graph(n_nodes, m_edges, seed=int(rng.integers(2**31)))
    # ensure connectivity by chaining components
    comps = [sorted(c) for c in nx.connected_components(g)]
    for a, b in zip(comps[:-1], comps[1:]):
        g.add_edge(a[0], b[0])
    rows, cols, data = [], [], []
    diag = np.full(n_nodes, 0.0)
    for u, v in g.edges():
        cond = 10.0 ** rng.uniform(-1.0, 1.0)
        rows += [u, v]
        cols += [v, u]
        data += [-cond, -cond]
        diag[u] += cond
        diag[v] += cond
    diag += rng.uniform(0.01, 0.1, size=n_nodes)  # conductance to ground
    rows += list(range(n_nodes))
    cols += list(range(n_nodes))
    data += list(diag)
    return COOMatrix(rows, cols, data, (n_nodes, n_nodes)).to_csr()


def random_sparse_symmetric(
    n: int, nnz_per_row: float = 5.0, seed: int = 0, spd_shift: bool = True
) -> CSRMatrix:
    """Random symmetric sparse matrix, optionally shifted to be SPD.

    Off-diagonal positions are uniform random; with ``spd_shift`` the
    diagonal is set to (row absolute sum + 1) making the matrix strictly
    diagonally dominant, hence SPD.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    m = max(0, int(round(nnz_per_row * n / 2.0)))
    i = rng.integers(0, n, size=m)
    j = rng.integers(0, n, size=m)
    mask = i != j
    i, j = i[mask], j[mask]
    v = rng.uniform(-1.0, 1.0, size=i.size)
    rows = np.concatenate([i, j])
    cols = np.concatenate([j, i])
    data = np.concatenate([v, v])
    coo = COOMatrix(rows, cols, data, (n, n))
    if spd_shift:
        abs_sums = np.zeros(n)
        np.add.at(abs_sums, coo.rows, np.abs(coo.data))
        drows = np.arange(n)
        coo = COOMatrix(
            np.concatenate([coo.rows, drows]),
            np.concatenate([coo.cols, drows]),
            np.concatenate([coo.data, abs_sums + 1.0]),
            (n, n),
        )
    return coo.to_csr()


def nas_cg_style(n: int, nnz_per_row: int = 7, seed: int = 0) -> CSRMatrix:
    """Random SPD sparse matrix in the spirit of the NAS CG kernel.

    The NAS benchmark builds a random sparse SPD matrix with a prescribed
    condition through sums of sparse outer products; this simplified
    variant uses a random symmetric pattern with geometrically decaying
    off-diagonal magnitudes and a dominance shift, which preserves the
    properties CG benchmarking needs (random irregular pattern, SPD, tunable
    density).
    """
    rng = np.random.default_rng(seed)
    m = max(1, (nnz_per_row - 1) * n // 2)
    i = rng.integers(0, n, size=m)
    j = rng.integers(0, n, size=m)
    mask = i != j
    i, j = i[mask], j[mask]
    v = rng.geometric(0.3, size=i.size) ** -1.0 * rng.choice([-1.0, 1.0], size=i.size)
    rows = np.concatenate([i, j])
    cols = np.concatenate([j, i])
    data = np.concatenate([v, v])
    coo = COOMatrix(rows, cols, data, (n, n))
    abs_sums = np.zeros(n)
    np.add.at(abs_sums, coo.rows, np.abs(coo.data))
    drows = np.arange(n)
    coo = COOMatrix(
        np.concatenate([coo.rows, drows]),
        np.concatenate([coo.cols, drows]),
        np.concatenate([coo.data, abs_sums + 0.1]),
        (n, n),
    )
    return coo.to_csr()


def irregular_powerlaw(
    n: int, exponent: float = 2.0, max_degree: Optional[int] = None, seed: int = 0
) -> CSRMatrix:
    """Graph Laplacian of a power-law (scale-free) graph: SPD, skewed rows.

    Row lengths follow a heavy-tailed degree distribution -- "some grid
    points may have many neighbours, while others have very few" (Section
    5.2.2) -- so uniform BLOCK distributions suffer the load imbalance
    experiment E11 measures.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    rng = np.random.default_rng(seed)
    if max_degree is None:
        max_degree = max(2, n // 4)
    degrees = np.minimum(rng.zipf(exponent, size=n), max_degree)
    # preferential attachment-ish stub matching
    stubs = np.repeat(np.arange(n), degrees)
    rng.shuffle(stubs)
    if stubs.size % 2:
        stubs = stubs[:-1]
    u, v = stubs[0::2], stubs[1::2]
    mask = u != v
    u, v = u[mask], v[mask]
    # guarantee connectivity with a ring backbone
    ring_u = np.arange(n)
    ring_v = (ring_u + 1) % n
    u = np.concatenate([u, ring_u])
    v = np.concatenate([v, ring_v])
    rows = np.concatenate([u, v])
    cols = np.concatenate([v, u])
    data = -np.ones(rows.size)
    coo = COOMatrix(rows, cols, data, (n, n))
    deg = np.zeros(n)
    np.add.at(deg, coo.rows, -coo.data)
    drows = np.arange(n)
    coo = COOMatrix(
        np.concatenate([coo.rows, drows]),
        np.concatenate([coo.cols, drows]),
        np.concatenate([coo.data, deg + 1.0]),
        (n, n),
    )
    return coo.to_csr()


def matrix_with_eigenvalues(eigenvalues: Sequence[float], seed: int = 0) -> DenseMatrix:
    """Dense symmetric matrix with exactly the given spectrum.

    ``A = Q diag(eigs) Q^T`` for a random orthogonal ``Q``.  Used by E12: CG
    converges in at most ``n_e`` iterations where ``n_e`` is the number of
    *distinct* eigenvalues.
    """
    eigs = np.asarray(eigenvalues, dtype=np.float64)
    if eigs.ndim != 1 or eigs.size == 0:
        raise ValueError("eigenvalues must be a non-empty 1-D sequence")
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((eigs.size, eigs.size)))
    return DenseMatrix((q * eigs) @ q.T)


def convection_diffusion_1d(n: int, peclet: float = 0.5) -> CSRMatrix:
    """1-D convection-diffusion: nonsymmetric tridiagonal.

    Discretising ``-u'' + 2*peclet*u'`` with central differences gives
    ``tridiag(-1 - peclet, 2, -1 + peclet)``.  Nonsymmetric for
    ``peclet != 0`` -- the case where BiCG / CGS / BiCGSTAB are needed
    because "the residual vectors employed by CG cannot be made orthogonal
    with short recurrences" (Section 2.1).
    """
    return tridiagonal(n, lower=-1.0 - peclet, diag=2.0, upper=-1.0 + peclet)


def nonsymmetric_diag_dominant(
    n: int, nnz_per_row: float = 6.0, seed: int = 0
) -> CSRMatrix:
    """Random nonsymmetric, strictly diagonally dominant sparse matrix.

    Well-conditioned by construction (Gershgorin), so the whole BiCG / CGS /
    BiCGSTAB family converges quickly -- the benign nonsymmetric workload
    for comparing the Section-2.1 algorithms on equal footing.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    m = max(0, int(round((nnz_per_row - 1) * n)))
    i = rng.integers(0, n, size=m)
    j = rng.integers(0, n, size=m)
    mask = i != j
    i, j = i[mask], j[mask]
    v = rng.uniform(-1.0, 1.0, size=i.size)
    coo = COOMatrix(i, j, v, (n, n))
    abs_sums = np.zeros(n)
    np.add.at(abs_sums, coo.rows, np.abs(coo.data))
    d = np.arange(n)
    return COOMatrix(
        np.concatenate([coo.rows, d]),
        np.concatenate([coo.cols, d]),
        np.concatenate([coo.data, abs_sums + 1.0]),
        (n, n),
    ).to_csr()


def rhs_for_solution(matrix, x_true: np.ndarray) -> np.ndarray:
    """Manufacture ``b = A @ x_true`` so solvers have a known answer."""
    return matrix.matvec(np.asarray(x_true, dtype=np.float64))
