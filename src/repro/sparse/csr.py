"""Compressed Sparse Row (CSR) storage.

The scheme of the paper's Figure 2: three arrays ``(row, col, a)`` where --
in the paper's 1-based Fortran notation -- ``a(nz)`` holds the nonzeros in
row order, ``col(nz)`` their column numbers, and ``row(n+1)`` points to the
first entry of each row.  Internally we use 0-based ``indptr`` / ``indices``
/ ``data``; :meth:`fortran_arrays` returns the 1-based trio for fidelity
with the paper's figures and the directive-level examples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from .base import SparseMatrix

if TYPE_CHECKING:  # pragma: no cover
    from .coo import COOMatrix
    from .csc import CSCMatrix

__all__ = ["CSRMatrix"]


class CSRMatrix(SparseMatrix):
    """CSR matrix defined by ``indptr`` (n+1), ``indices`` (nnz), ``data`` (nnz)."""

    def __init__(self, indptr, indices, data, shape: Tuple[int, int] = None):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if indptr.ndim != 1 or indices.ndim != 1 or data.ndim != 1:
            raise ValueError("indptr, indices, data must be 1-D")
        if indices.shape != data.shape:
            raise ValueError("indices and data must have equal length")
        nrows = indptr.size - 1
        if nrows < 0:
            raise ValueError("indptr must have at least one entry")
        if shape is None:
            ncols = int(indices.max()) + 1 if indices.size else 0
            shape = (nrows, ncols)
        self.shape = self._check_shape(shape)
        if self.shape[0] != nrows:
            raise ValueError(
                f"indptr implies {nrows} rows but shape says {self.shape[0]}"
            )
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if (np.diff(indptr) < 0).any():
            raise ValueError("indptr must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= self.shape[1]):
            raise ValueError("column index out of bounds")
        self.indptr = indptr
        self.indices = indices
        self.data = data

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def row_lengths(self) -> np.ndarray:
        """Number of stored entries in each row."""
        return np.diff(self.indptr)

    def expanded_rows(self) -> np.ndarray:
        """Row index of every stored entry (length nnz)."""
        return np.repeat(
            np.arange(self.nrows, dtype=np.int64), self.row_lengths()
        )

    # ------------------------------------------------------------------ #
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``q(j) = sum_k a(k) * x(col(k))`` over row ``j``'s entries.

        This is the vectorised form of the paper's Figure-2 FORALL loop:
        contributions ``a * x[col]`` are scattered to their rows.
        """
        x = self._check_vector(x, self.ncols)
        y = np.zeros(self.nrows, dtype=np.result_type(self.dtype, x.dtype))
        np.add.at(y, self.expanded_rows(), self.data * x[self.indices])
        return y

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``A.T @ x``: gather by row, scatter by column (a CSC-style loop)."""
        x = self._check_vector(x, self.nrows)
        y = np.zeros(self.ncols, dtype=np.result_type(self.dtype, x.dtype))
        np.add.at(y, self.indices, self.data * x[self.expanded_rows()])
        return y

    def diagonal(self) -> np.ndarray:
        d = np.zeros(min(self.shape), dtype=self.dtype)
        rows = self.expanded_rows()
        mask = rows == self.indices
        np.add.at(d, rows[mask], self.data[mask])
        return d

    def row_slice(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row ``j``."""
        if not 0 <= j < self.nrows:
            raise IndexError(f"row {j} out of range")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    # ------------------------------------------------------------------ #
    def to_coo(self) -> "COOMatrix":
        from .coo import COOMatrix

        return COOMatrix(
            self.expanded_rows(),
            self.indices,
            self.data,
            shape=self.shape,
            sum_duplicates=False,
        )

    def to_csr(self) -> "CSRMatrix":
        return self

    def transpose(self) -> "CSCMatrix":
        """``A.T`` for free: reinterpret the same arrays as CSC."""
        from .csc import CSCMatrix

        return CSCMatrix(
            self.indptr,
            self.indices,
            self.data,
            shape=(self.ncols, self.nrows),
        )

    # ------------------------------------------------------------------ #
    def fortran_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The paper's 1-based ``(row, col, a)`` trio for this CSR matrix.

        ``row`` has ``n+1`` entries pointing at the first element of each
        row (1-based); ``col`` holds 1-based column numbers; ``a`` the
        values.
        """
        return self.indptr + 1, self.indices + 1, self.data.copy()

    @classmethod
    def from_fortran_arrays(
        cls, row, col, a, shape: Tuple[int, int] = None
    ) -> "CSRMatrix":
        """Build from the paper's 1-based ``(row, col, a)`` arrays."""
        row = np.asarray(row, dtype=np.int64)
        col = np.asarray(col, dtype=np.int64)
        return cls(row - 1, col - 1, a, shape=shape)
