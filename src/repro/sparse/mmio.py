"""Minimal MatrixMarket coordinate I/O.

Supports the ``%%MatrixMarket matrix coordinate real general|symmetric``
header, which is enough to persist every matrix this package generates and
to exchange instances with external tools.  Written from the format
specification; round-trip fidelity is covered by tests.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from .base import SparseMatrix
from .coo import COOMatrix
from .properties import is_symmetric

__all__ = ["write_matrix_market", "read_matrix_market"]

_HEADER = "%%MatrixMarket matrix coordinate real {symmetry}\n"


def write_matrix_market(
    matrix: SparseMatrix, target: Union[str, Path, TextIO], force_general: bool = False
) -> None:
    """Write ``matrix`` in MatrixMarket coordinate format.

    Symmetric matrices are stored as lower triangles with the ``symmetric``
    qualifier unless ``force_general``.
    """
    coo = matrix.to_coo()
    symmetric = not force_general and is_symmetric(matrix)
    if symmetric:
        keep = coo.rows >= coo.cols
        rows, cols, data = coo.rows[keep], coo.cols[keep], coo.data[keep]
    else:
        rows, cols, data = coo.rows, coo.cols, coo.data

    def _emit(fh: TextIO) -> None:
        fh.write(_HEADER.format(symmetry="symmetric" if symmetric else "general"))
        fh.write(f"{matrix.nrows} {matrix.ncols} {data.size}\n")
        for i, j, v in zip(rows, cols, data):
            fh.write(f"{i + 1} {j + 1} {float(v)!r}\n")

    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="ascii") as fh:
            _emit(fh)
    else:
        _emit(target)


def read_matrix_market(source: Union[str, Path, TextIO]) -> COOMatrix:
    """Read a MatrixMarket coordinate file into a :class:`COOMatrix`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as fh:
            return read_matrix_market(fh)
    assert isinstance(source, (io.TextIOBase, io.StringIO)) or hasattr(source, "readline")
    header = source.readline().strip().lower().split()
    if (
        len(header) < 5
        or header[0] != "%%matrixmarket"
        or header[1] != "matrix"
        or header[2] != "coordinate"
        or header[3] != "real"
    ):
        raise ValueError(f"unsupported MatrixMarket header: {' '.join(header)}")
    symmetry = header[4]
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry!r}")
    line = source.readline()
    while line.startswith("%"):
        line = source.readline()
    nrows, ncols, nnz = (int(t) for t in line.split())
    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    data = np.empty(nnz, dtype=np.float64)
    for k in range(nnz):
        parts = source.readline().split()
        if len(parts) != 3:
            raise ValueError(f"malformed entry line {k + 1}: {parts}")
        rows[k] = int(parts[0]) - 1
        cols[k] = int(parts[1]) - 1
        data[k] = float(parts[2])
    if symmetry == "symmetric":
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, rows[: nnz][off]])
        data = np.concatenate([data, data[off]])
    return COOMatrix(rows, cols, data, shape=(nrows, ncols))
