"""Structural and numerical property queries on matrices.

These feed the distribution decisions the paper discusses: symmetry (the
Figure-2 FORALL "works because A(i,j) = A(j,i) for the case of CG where A
must be symmetric"), row-length statistics (uniform vs irregular sparse
block distributions, Section 5.2), and positive-definiteness checks used by
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import SparseMatrix

__all__ = [
    "is_symmetric",
    "is_positive_definite",
    "is_diagonally_dominant",
    "bandwidth",
    "RowStats",
    "row_length_stats",
    "nnz_imbalance",
]


def is_symmetric(matrix: SparseMatrix, tol: float = 1e-12) -> bool:
    """True when ``A == A.T`` entrywise within ``tol``."""
    if matrix.nrows != matrix.ncols:
        return False
    coo = matrix.to_coo()
    a = matrix.to_scipy()
    return abs(a - a.T).max() <= tol if coo.nnz else True


def is_positive_definite(matrix: SparseMatrix) -> bool:
    """Cholesky-based SPD check (densifies; intended for test-size matrices)."""
    if matrix.nrows != matrix.ncols:
        return False
    try:
        np.linalg.cholesky(matrix.toarray())
        return True
    except np.linalg.LinAlgError:
        return False


def is_diagonally_dominant(matrix: SparseMatrix, strict: bool = False) -> bool:
    """Row diagonal dominance: ``|a_ii| >= sum_{j!=i} |a_ij|`` for all i."""
    coo = matrix.to_coo()
    n = matrix.nrows
    offsum = np.zeros(n)
    diag = np.zeros(n)
    mask = coo.rows == coo.cols
    np.add.at(diag, coo.rows[mask], np.abs(coo.data[mask]))
    np.add.at(offsum, coo.rows[~mask], np.abs(coo.data[~mask]))
    if strict:
        return bool((diag > offsum).all())
    return bool((diag >= offsum - 1e-15).all())


def bandwidth(matrix: SparseMatrix) -> int:
    """Maximum ``|i - j|`` over stored entries (0 for diagonal/empty)."""
    coo = matrix.to_coo()
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.rows - coo.cols).max())


@dataclass(frozen=True)
class RowStats:
    """Summary statistics of per-row nonzero counts."""

    min: int
    max: int
    mean: float
    std: float

    @property
    def skew_ratio(self) -> float:
        """max/mean -- >1 signals the irregularity of Section 5.2.2."""
        return self.max / self.mean if self.mean else 1.0


def row_length_stats(matrix: SparseMatrix) -> RowStats:
    """Per-row nonzero count statistics."""
    lengths = np.diff(matrix.to_csr().indptr)
    if lengths.size == 0:
        return RowStats(0, 0, 0.0, 0.0)
    return RowStats(
        int(lengths.min()),
        int(lengths.max()),
        float(lengths.mean()),
        float(lengths.std()),
    )


def nnz_imbalance(matrix: SparseMatrix, boundaries: np.ndarray) -> float:
    """Max/mean nonzeros per partition for row partitions at ``boundaries``.

    ``boundaries`` has ``P + 1`` entries; partition ``r`` owns rows
    ``boundaries[r]:boundaries[r+1]``.  Returns 1.0 for perfect balance --
    the quantity E11's load-balancing partitioner minimises.
    """
    boundaries = np.asarray(boundaries, dtype=np.int64)
    csr = matrix.to_csr()
    per_part = csr.indptr[boundaries[1:]] - csr.indptr[boundaries[:-1]]
    mean = per_part.mean()
    if mean == 0:
        return 1.0
    return float(per_part.max() / mean)
