"""Reliable messaging on top of the raw ``Send``/``Recv`` operations.

A stop-and-wait ARQ protocol, per ``(peer, tag)`` channel: every data
message carries a sequence number and a checksum, the receiver acknowledges
each delivery, and the sender retransmits with exponential backoff when the
acknowledgement does not arrive within a timeout.  Duplicates are filtered
by sequence number, corrupted packets are discarded (the missing ack makes
the sender retransmit), and a peer that never answers is diagnosed as
failed (:class:`~repro.machine.faults.RankFailedError`) after a bounded
number of retries.

Robustness has a *measurable* simulated price: every retransmission is a
real :class:`~repro.machine.events.Send` priced by the machine's cost model
on delivery, dropped transmissions are charged to
:class:`~repro.machine.stats.MachineStats` as ``"p2p-dropped"`` records,
and every ack is a short extra message.  Benchmark E19 reads those numbers
off the stats to report the overhead of fault tolerance against the
fault-free run.

The binomial-tree collectives of :mod:`repro.machine.spmd` are mirrored
here on top of the reliable primitives, so the message-passing CG baseline
can swap its transport without touching the numerics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from .events import Op, Recv, Send
from .faults import RankFailedError, RecvTimeoutError

__all__ = [
    "ACK_TAG_BASE",
    "ReliableConfig",
    "ReliableEndpoint",
    "checksum",
    "bcast",
    "reduce_to_root",
    "allreduce_sum",
    "allreduce_vec",
    "gather_to_root",
    "allgather",
]

GenOp = Generator[Op, Any, Any]

#: acknowledgements travel on ``ACK_TAG_BASE + data_tag`` so they can never
#: collide with application tags (which are small integers)
ACK_TAG_BASE = 1 << 20


@dataclass(frozen=True)
class ReliableConfig:
    """Tuning knobs of the stop-and-wait protocol.

    ``base_timeout`` is the first wait for an ack (simulated seconds); each
    retry multiplies it by ``backoff``.  After ``max_retries``
    retransmissions without an ack the peer is declared failed.
    ``ack_words`` is the modelled wire size of an acknowledgement.
    """

    base_timeout: float = 2.0e-3
    backoff: float = 2.0
    max_retries: int = 10
    ack_words: float = 2.0

    def __post_init__(self) -> None:
        if self.base_timeout <= 0:
            raise ValueError("base_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")


def checksum(payload: Any) -> float:
    """Order-sensitive numeric digest of a message payload.

    Cheap by design (the simulated 1990s NIC has no crypto engine): a
    weighted sum over leaves.  Any perturbation of a single entry -- which
    is what :meth:`FaultPlan.corrupt_payload` injects -- changes the digest
    almost surely, which is all the ARQ layer needs.
    """
    if payload is None:
        return 0.0
    if isinstance(payload, np.ndarray):
        if payload.size == 0:
            return 0.5
        flat = payload.reshape(-1).astype(float, copy=False)
        weights = np.arange(1, flat.size + 1, dtype=float)
        return float(flat @ weights) + 0.25 * flat.size
    if isinstance(payload, (bool, int, float, complex, np.generic)):
        return float(np.real(payload)) * 1.000000119 + 0.125
    if isinstance(payload, (tuple, list)):
        return float(
            sum((i + 1) * 1.0000003 * checksum(p) for i, p in enumerate(payload))
        )
    if isinstance(payload, dict):
        return float(
            sum(
                (i + 1) * 1.0000007 * checksum(payload[k])
                for i, k in enumerate(sorted(payload, key=repr))
            )
        )
    return 1.0


def _valid_packet(packet: Any) -> bool:
    return (
        isinstance(packet, tuple)
        and len(packet) == 3
        and isinstance(packet[0], (int, np.integer))
        and isinstance(packet[1], (int, float, np.floating))
    )


class ReliableEndpoint:
    """One rank's reliable transport state (sequence numbers + telemetry).

    Create one endpoint per rank program instance.  ``telemetry`` is an
    optional shared mutable dict (all rank generators run in one thread)
    that survives the generators, so drivers can report retransmission
    totals even for attempts that were aborted by a crash.
    """

    def __init__(
        self,
        rank: int,
        config: Optional[ReliableConfig] = None,
        telemetry: Optional[Dict[str, float]] = None,
    ):
        self.rank = rank
        self.config = config or ReliableConfig()
        self._send_seq: Dict[Tuple[int, int], int] = {}
        self._recv_seq: Dict[Tuple[int, int], int] = {}
        self.telemetry = telemetry if telemetry is not None else {}
        for key in (
            "retransmissions",
            "retransmitted_words",
            "acks",
            "corrupt_discarded",
            "duplicates_discarded",
        ):
            self.telemetry.setdefault(key, 0)

    # ------------------------------------------------------------------ #
    def send(self, dest: int, payload: Any, tag: int = 0) -> GenOp:
        """Reliably deliver ``payload`` to ``dest`` (generator helper).

        Retransmits until the matching ack arrives; raises
        :class:`RankFailedError` once retries are exhausted.
        """
        cfg = self.config
        key = (dest, tag)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        packet = (seq, checksum((seq, payload)), payload)
        ack_tag = ACK_TAG_BASE + tag
        timeout = cfg.base_timeout
        for attempt in range(cfg.max_retries + 1):
            yield Send(dest=dest, payload=packet, tag=tag)
            if attempt:
                self.telemetry["retransmissions"] += 1
                self.telemetry["retransmitted_words"] += _packet_words(packet)
            try:
                while True:
                    ack = yield Recv(source=dest, tag=ack_tag, timeout=timeout)
                    if isinstance(ack, (int, np.integer)) and int(ack) == seq:
                        return None
                    # stale or corrupted ack: keep listening in this window
            except RecvTimeoutError:
                timeout *= cfg.backoff
        raise RankFailedError(
            f"rank {self.rank}: no ack from rank {dest} for tag {tag} "
            f"seq {seq} after {cfg.max_retries} retries",
            rank=dest,
        )

    def recv(self, source: int, tag: int = 0) -> GenOp:
        """Reliably receive the next in-order payload from ``source``.

        Blocks without a timer: in stop-and-wait ARQ retransmission is the
        *sender's* job, so the receiver simply waits -- a lost message is
        re-sent by the peer's timeout, and a crashed peer surfaces as
        :class:`RankFailedError` from the scheduler's stall diagnosis.
        (A receiver-side timer would misfire whenever some *other* pair's
        retransmission storm stretched the wait.)
        """
        cfg = self.config
        key = (source, tag)
        expected = self._recv_seq.get(key, 0)
        ack_tag = ACK_TAG_BASE + tag
        while True:
            packet = yield Recv(source=source, tag=tag)
            if not _valid_packet(packet):
                self.telemetry["corrupt_discarded"] += 1
                continue
            seq, chk, payload = packet
            seq = int(seq)
            if checksum((seq, payload)) != chk:
                # corrupted in flight: discard; the missing ack triggers a
                # retransmission at the sender
                self.telemetry["corrupt_discarded"] += 1
                continue
            if seq == expected:
                self._recv_seq[key] = expected + 1
                yield Send(
                    dest=source, payload=seq, tag=ack_tag,
                    nwords=cfg.ack_words, control=True,
                )
                self.telemetry["acks"] += 1
                return payload
            if seq < expected:
                # duplicate or stale retransmission: re-ack so the sender
                # stops resending, but do not deliver twice
                self.telemetry["duplicates_discarded"] += 1
                yield Send(
                    dest=source, payload=seq, tag=ack_tag,
                    nwords=cfg.ack_words, control=True,
                )
                self.telemetry["acks"] += 1
                continue
            # seq > expected cannot happen under stop-and-wait unless the
            # sequence number itself was corrupted: discard, no ack
            self.telemetry["corrupt_discarded"] += 1


def _packet_words(packet: Any) -> float:
    from .events import payload_words

    return payload_words(packet)


# ---------------------------------------------------------------------- #
# collectives over the reliable transport (binomial trees, mirroring
# repro.machine.spmd so measured structure matches the raw versions)
# ---------------------------------------------------------------------- #
def _combine_default(a: Any, b: Any) -> Any:
    return a + b


def bcast(
    ep: ReliableEndpoint, rank: int, size: int, value: Any,
    root: int = 0, tag: int = 1,
) -> GenOp:
    """Binomial-tree broadcast; returns the broadcast value on every rank."""
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank < mask:
            partner = vrank + mask
            if partner < size:
                yield from ep.send((partner + root) % size, value, tag=tag)
        elif vrank < 2 * mask:
            value = yield from ep.recv(((vrank - mask) + root) % size, tag=tag)
        mask <<= 1
    return value


def reduce_to_root(
    ep: ReliableEndpoint,
    rank: int,
    size: int,
    value: Any,
    root: int = 0,
    op: Callable[[Any, Any], Any] = _combine_default,
    tag: int = 2,
) -> GenOp:
    """Binomial-tree reduction; ``root`` returns the combined value."""
    vrank = (rank - root) % size
    mask = 1
    result = value
    while mask < size:
        if vrank & mask:
            yield from ep.send(((vrank - mask) + root) % size, result, tag=tag)
            return None
        partner = vrank + mask
        if partner < size:
            other = yield from ep.recv((partner + root) % size, tag=tag)
            result = op(result, other)
        mask <<= 1
    return result if vrank == 0 else None


def allreduce_sum(
    ep: ReliableEndpoint,
    rank: int,
    size: int,
    value: Any,
    op: Callable[[Any, Any], Any] = _combine_default,
    tag: int = 3,
) -> GenOp:
    """All-reduce: reliable reduce to rank 0, then reliable broadcast."""
    reduced = yield from reduce_to_root(ep, rank, size, value, root=0, op=op, tag=tag)
    result = yield from bcast(ep, rank, size, reduced, root=0, tag=tag + 1)
    return result


def allreduce_vec(
    ep: ReliableEndpoint, rank: int, size: int, values: Any, tag: int = 3
) -> GenOp:
    """Batched all-reduce of ``k`` packed scalars over the reliable ARQ.

    Same wire format as :func:`repro.machine.spmd.allreduce_vec` (one flat
    float64 vector, slot-wise sums), so the fused CG variants pay one
    acknowledged tree per iteration instead of one per inner product.
    """
    vec = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    if vec.ndim != 1 or vec.size == 0:
        raise ValueError(
            f"allreduce_vec packs a non-empty 1-D scalar vector, got "
            f"shape {vec.shape}"
        )

    # inline binomial reduce (same tree as reduce_to_root) so a slot
    # mismatch can name the rank whose subtree contributed the bad shape
    mask = 1
    result = vec
    while mask < size:
        if rank & mask:
            yield from ep.send(rank - mask, result, tag=tag)
            result = None
            break
        partner = rank + mask
        if partner < size:
            other = yield from ep.recv(partner, tag=tag)
            other = np.asarray(other)
            if other.shape != result.shape:
                raise ValueError(
                    f"allreduce_vec slot mismatch: rank {partner} "
                    f"contributed {other.shape}, rank {rank} expected "
                    f"{result.shape}"
                )
            result = result + other
        mask <<= 1
    result = yield from bcast(ep, rank, size, result, root=0, tag=tag + 1)
    return result


def gather_to_root(
    ep: ReliableEndpoint, rank: int, size: int, value: Any,
    root: int = 0, tag: int = 5,
) -> GenOp:
    """Binomial-tree gather; ``root`` returns the full per-rank list."""
    vrank = (rank - root) % size
    contributions = {rank: value}
    mask = 1
    while mask < size:
        if vrank & mask:
            yield from ep.send(
                ((vrank - mask) + root) % size, contributions, tag=tag
            )
            return None
        partner = vrank + mask
        if partner < size:
            sub = yield from ep.recv((partner + root) % size, tag=tag)
            contributions.update(sub)
        mask <<= 1
    if vrank == 0:
        return [contributions[r] for r in range(size)]
    return None


def allgather(
    ep: ReliableEndpoint, rank: int, size: int, value: Any, tag: int = 7
) -> GenOp:
    """All-to-all broadcast over the reliable transport."""
    gathered = yield from gather_to_root(ep, rank, size, value, root=0, tag=tag)
    result = yield from bcast(ep, rank, size, gathered, root=0, tag=tag + 1)
    return result
