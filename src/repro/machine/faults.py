"""Deterministic fault injection for the simulated multicomputer.

The paper's evaluation assumes a perfectly reliable 1995-era machine; at
production scale message loss, stragglers and rank failures are the norm.
A :class:`FaultPlan` describes, ahead of a run, every fault the simulated
network and processors will exhibit:

* **message faults** -- drop, duplicate, corrupt or delay individual
  point-to-point messages, either with a probability per message or with
  targeted :class:`FaultRule` entries matching ``(src, dst, tag, nth)``;
* **fail-stop crashes** -- :class:`RankCrash` kills a rank at a scheduled
  virtual time (the rank's generator is closed, in-flight messages to it
  are lost);
* **silent state corruption** -- :class:`StateCorruption` perturbs solver
  state (``x``, ``r``, ``p`` or a scalar) at a chosen iteration, modelling
  an undetected memory error; solvers detect it with a periodic sanity
  residual recomputation (see :mod:`repro.core.resilience`).

Every random decision is drawn from one seeded NumPy generator, and the
scheduler interleaves ranks deterministically, so a run with a fresh
``FaultPlan(seed=s)`` is bit-identical across repeats.  ``FaultPlan.none()``
(the default everywhere) injects nothing and consumes no random numbers, so
fault-free runs are unchanged down to the last clock tick.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DELIVER",
    "DROP",
    "DUPLICATE",
    "CORRUPT",
    "DELAY",
    "FaultRule",
    "RankCrash",
    "RankSlowdown",
    "StateCorruption",
    "FaultStats",
    "FaultPlan",
    "RankFailedError",
    "RecvTimeoutError",
    "StragglerDetectedError",
]

# message-fault actions (plain strings keep FaultRule literals readable)
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"
CORRUPT = "corrupt"
DELAY = "delay"

_ACTIONS = (DROP, DUPLICATE, CORRUPT, DELAY)


class RankFailedError(RuntimeError):
    """A rank suffered a fail-stop crash (or a peer gave up waiting on it).

    ``rank`` identifies the failed rank when the raiser knows it (the
    recovery driver reports it in ``crashes_recovered``); ``None`` when
    the failure could not be pinned on a single rank.
    """

    def __init__(self, message: str = "", rank: "int | None" = None):
        super().__init__(message)
        self.rank = rank


class RecvTimeoutError(TimeoutError):
    """A ``Recv(timeout=...)`` expired before a matching send arrived.

    Raised *inside* the blocked rank's generator so the program can catch
    it and retry -- the mechanism the reliable-messaging layer
    (:mod:`repro.machine.reliable`) builds its retransmissions on.

    Both execution substrates raise it with the same diagnostics: ``rank``
    (the blocked receiver), ``peer`` (the awaited source; ``None`` for
    ANY_SOURCE), ``tag`` and ``elapsed`` (how long the receive waited, in
    that substrate's time base).  When constructed with only those fields
    the message is composed uniformly, so log lines read the same whether
    the timeout happened in virtual or wall-clock time.
    """

    def __init__(
        self,
        message: str = "",
        *,
        rank: "int | None" = None,
        peer: "int | None" = None,
        tag: "int | None" = None,
        elapsed: "float | None" = None,
    ):
        if not message:
            src = "ANY_SOURCE" if peer is None else peer
            message = (
                f"rank {rank}: receive (source={src}, tag={tag}) "
                f"timed out after {elapsed:g}s"
                if elapsed is not None
                else f"rank {rank}: receive (source={src}, tag={tag}) timed out"
            )
        super().__init__(message)
        self.rank = rank
        self.peer = peer
        self.tag = tag
        self.elapsed = elapsed


class StragglerDetectedError(RuntimeError):
    """A live rank fell behind its peers past the straggler deadline.

    Distinct from a fail-stop: the rank is still making progress, just too
    slowly.  ``rank`` is the detected straggler, ``lag`` how far behind the
    fastest live peer it was when flagged (virtual seconds on the simulated
    backend, wall-clock heartbeat age on the process backend), ``factor``
    the injected slowdown factor when known (``None`` for organic lag).
    The recovery driver decides whether to respawn, shrink the rank set,
    or rebalance work away from the slow rank.
    """

    def __init__(
        self,
        message: str = "",
        rank: "int | None" = None,
        lag: "float | None" = None,
        factor: "float | None" = None,
    ):
        if not message:
            message = f"rank {rank} declared a straggler"
            if lag is not None:
                message += f" ({lag:g}s behind the fastest live peer)"
        super().__init__(message)
        self.rank = rank
        self.lag = lag
        self.factor = factor


@dataclass(frozen=True)
class FaultRule:
    """Targeted message fault: apply ``kind`` to messages matching the key.

    ``None`` fields are wildcards.  ``nth`` (1-based) restricts the rule to
    the nth message matching the ``(src, dst, tag)`` pattern; ``None``
    applies it to every match.
    """

    kind: str
    src: Optional[int] = None
    dst: Optional[int] = None
    tag: Optional[int] = None
    nth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _ACTIONS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use {_ACTIONS}")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")

    def matches(self, src: int, dst: int, tag: int) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.tag is None or self.tag == tag)
        )


@dataclass(frozen=True)
class RankCrash:
    """Fail-stop crash of ``rank`` at simulated time ``at_time``.

    The crash takes effect at the first operation boundary at or after
    ``at_time`` on that rank's clock (or when the scheduler stalls, for a
    rank that is blocked).
    """

    rank: int
    at_time: float

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise ValueError("crash time must be non-negative")


@dataclass(frozen=True)
class RankSlowdown:
    """A rank turns into a straggler from ``at_time`` onward.

    Models a slow-but-alive processor (thermal throttling, a noisy
    neighbour, a failing disk) rather than a fail-stop.  The two execution
    substrates consume different fields:

    * the simulated scheduler multiplies the rank's per-op compute cost by
      ``factor`` (time dilation in virtual time);
    * the process backend sleeps ``op_delay`` wall-clock seconds before
      each Compute op (real dilation a heartbeat monitor can observe).

    At most one slowdown per rank; consumed-once on recovery like crashes.
    """

    rank: int
    at_time: float = 0.0
    factor: float = 1.0
    op_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise ValueError("slowdown start time must be non-negative")
        if self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1 (1 = no slowdown)")
        if self.op_delay < 0:
            raise ValueError("op_delay must be non-negative")


@dataclass(frozen=True)
class StateCorruption:
    """Silent corruption of solver state at iteration ``iteration``.

    ``target`` is one of ``"x"``, ``"r"``, ``"p"``; ``rank`` selects which
    rank's local block is hit in SPMD solvers (ignored by the HPF solvers,
    which hold logically-global state).  ``scale`` sets the magnitude of the
    injected error relative to the perturbed entry.
    """

    iteration: int
    target: str = "x"
    rank: int = 0
    scale: float = 1.0e3

    def __post_init__(self) -> None:
        if self.target not in ("x", "r", "p"):
            raise ValueError("corruption target must be 'x', 'r' or 'p'")
        if self.iteration < 1:
            raise ValueError("iteration is 1-based and must be >= 1")


@dataclass
class FaultStats:
    """Counters of faults actually injected during a run."""

    messages_seen: int = 0
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    delayed: int = 0
    lost_to_dead_rank: int = 0
    crashed_ranks: List[int] = field(default_factory=list)
    state_corruptions: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "messages_seen": self.messages_seen,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "delayed": self.delayed,
            "lost_to_dead_rank": self.lost_to_dead_rank,
            "crashed_ranks": list(self.crashed_ranks),
            "state_corruptions": self.state_corruptions,
        }


class FaultPlan:
    """Seeded, deterministic description of every fault in a run.

    Parameters
    ----------
    seed:
        Seed of the NumPy generator all probabilistic decisions and
        corruption values are drawn from.
    drop_prob, duplicate_prob, corrupt_prob, delay_prob:
        Per-message probabilities (mutually exclusive outcomes; their sum
        must not exceed 1).
    delay_time:
        Mean extra latency added to a delayed message's post time.
    rules:
        Targeted :class:`FaultRule` entries; a matching rule overrides the
        probabilistic draw for that message.
    crashes:
        :class:`RankCrash` schedule (at most one per rank).
    slowdowns:
        :class:`RankSlowdown` schedule (at most one per rank).
    state_corruptions:
        :class:`StateCorruption` entries consumed by the solvers.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_prob: float = 0.0,
        duplicate_prob: float = 0.0,
        corrupt_prob: float = 0.0,
        delay_prob: float = 0.0,
        delay_time: float = 1.0e-4,
        rules: Sequence[FaultRule] = (),
        crashes: Sequence[RankCrash] = (),
        slowdowns: Sequence[RankSlowdown] = (),
        state_corruptions: Sequence[StateCorruption] = (),
    ):
        probs = (drop_prob, duplicate_prob, corrupt_prob, delay_prob)
        for p in probs:
            if not 0.0 <= p <= 1.0:
                raise ValueError("fault probabilities must lie in [0, 1]")
        if sum(probs) > 1.0:
            raise ValueError("fault probabilities must sum to at most 1")
        if delay_time < 0:
            raise ValueError("delay_time must be non-negative")
        self.seed = seed
        self.drop_prob = drop_prob
        self.duplicate_prob = duplicate_prob
        self.corrupt_prob = corrupt_prob
        self.delay_prob = delay_prob
        self.delay_time = delay_time
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        crash_ranks = [c.rank for c in crashes]
        if len(crash_ranks) != len(set(crash_ranks)):
            raise ValueError("at most one scheduled crash per rank")
        self._crashes: Dict[int, float] = {c.rank: float(c.at_time) for c in crashes}
        slow_ranks = [s.rank for s in slowdowns]
        if len(slow_ranks) != len(set(slow_ranks)):
            raise ValueError("at most one scheduled slowdown per rank")
        self._slowdowns: Dict[int, RankSlowdown] = {s.rank: s for s in slowdowns}
        self._corruptions: List[StateCorruption] = list(state_corruptions)
        self._rng = np.random.default_rng(seed)
        self._rule_hits: Dict[int, int] = defaultdict(int)
        self.stats = FaultStats()

    # ------------------------------------------------------------------ #
    @classmethod
    def none(cls) -> "FaultPlan":
        """An inert plan: nothing is injected, no random numbers consumed."""
        return cls()

    @property
    def enabled(self) -> bool:
        """Whether this plan can inject anything at all."""
        return bool(
            self.drop_prob
            or self.duplicate_prob
            or self.corrupt_prob
            or self.delay_prob
            or self.rules
            or self._crashes
            or self._slowdowns
            or self._corruptions
        )

    def clone(self) -> "FaultPlan":
        """A fresh plan with the same configuration and reset state.

        Use one clone per run when repeating an experiment: fault decisions
        restart from the seed, so repeats are bit-identical.
        """
        return FaultPlan(
            seed=self.seed,
            drop_prob=self.drop_prob,
            duplicate_prob=self.duplicate_prob,
            corrupt_prob=self.corrupt_prob,
            delay_prob=self.delay_prob,
            delay_time=self.delay_time,
            rules=self.rules,
            crashes=self.crash_schedule(),
            slowdowns=self.slowdown_schedule(),
            state_corruptions=tuple(self._corruptions),
        )

    # ------------------------------------------------------------------ #
    # backend-agnostic decomposition (consumed by repro.backend)
    # ------------------------------------------------------------------ #
    @property
    def message_faults_enabled(self) -> bool:
        """Whether any message-level fault (drop/dup/corrupt/delay) can fire."""
        return bool(
            self.drop_prob
            or self.duplicate_prob
            or self.corrupt_prob
            or self.delay_prob
            or self.rules
        )

    def crash_schedule(self) -> Tuple[RankCrash, ...]:
        """The still-pending fail-stop crashes, in rank order."""
        return tuple(RankCrash(r, t) for r, t in sorted(self._crashes.items()))

    def state_corruption_schedule(self) -> Tuple[StateCorruption, ...]:
        """The still-pending silent state corruptions."""
        return tuple(self._corruptions)

    def slowdown_schedule(self) -> Tuple[RankSlowdown, ...]:
        """The still-pending rank slowdowns, in rank order."""
        return tuple(self._slowdowns[r] for r in sorted(self._slowdowns))

    def substrate_plan(self) -> "FaultPlan":
        """A plan carrying the substrate's share: crashes *and* slowdowns.

        Extends :meth:`crashes_only` for substrates that also model time
        dilation (the simulated scheduler charges dilated compute; the
        process-backend driver sleeps before Compute ops).
        """
        return FaultPlan(
            seed=self.seed,
            crashes=self.crash_schedule(),
            slowdowns=self.slowdown_schedule(),
        )

    def remap_ranks(self, survivors: Sequence[int]) -> None:
        """Renumber every pending fault in-place after a shrink.

        ``survivors`` lists the old rank ids that remain, in their new rank
        order (new rank = position in the list).  Faults pinned to removed
        ranks are dropped; targeted rules with a ``src``/``dst`` naming a
        removed rank are dropped too (wildcards survive untouched).
        """
        new_of = {old: new for new, old in enumerate(survivors)}
        self._crashes = {
            new_of[r]: t for r, t in self._crashes.items() if r in new_of
        }
        self._slowdowns = {
            new_of[r]: RankSlowdown(
                rank=new_of[r], at_time=s.at_time, factor=s.factor,
                op_delay=s.op_delay,
            )
            for r, s in self._slowdowns.items()
            if r in new_of
        }
        self._corruptions = [
            StateCorruption(
                iteration=c.iteration, target=c.target,
                rank=new_of[c.rank], scale=c.scale,
            )
            for c in self._corruptions
            if c.rank in new_of
        ]
        kept_rules = []
        for rule in self.rules:
            if rule.src is not None and rule.src not in new_of:
                continue
            if rule.dst is not None and rule.dst not in new_of:
                continue
            kept_rules.append(
                FaultRule(
                    kind=rule.kind,
                    src=None if rule.src is None else new_of[rule.src],
                    dst=None if rule.dst is None else new_of[rule.dst],
                    tag=rule.tag,
                    nth=rule.nth,
                )
            )
        self.rules = tuple(kept_rules)

    def crashes_only(self) -> "FaultPlan":
        """A plan carrying only the fail-stop crash schedule.

        The execution backends split one user-facing plan by layer: message
        faults are injected at the Comm boundary (sender-side, per rank),
        state corruptions inside the solver program, and crashes by the
        substrate itself -- the simulated scheduler or the process-backend
        supervisor.  This derivation feeds the substrate its share without
        double-injecting the message faults.
        """
        return FaultPlan(seed=self.seed, crashes=self.crash_schedule())

    def for_rank(self, rank: int) -> "FaultPlan":
        """The rank-local derivation of this plan for sender-side injection.

        Message-fault decisions are drawn from a generator seeded by
        ``(seed, rank)``, consulted in the *sending rank's program order* --
        an order that is identical on the simulated and the process backend
        (it is the program text), which is what makes the injected-fault
        sequence reproducible across substrates where a globally shared
        generator could not be.  Targeted rules keep only those that can
        match this sender (``src`` wildcard rules match on every rank, and
        their ``nth`` counters count *this rank's* matches); crashes are
        excluded (substrate business); state corruptions keep only this
        rank's entries.
        """
        if rank < 0:
            raise ValueError("rank must be non-negative")
        return FaultPlan(
            seed=(self.seed * 1_000_003 + 7_919 * (rank + 1)) % (2**63),
            drop_prob=self.drop_prob,
            duplicate_prob=self.duplicate_prob,
            corrupt_prob=self.corrupt_prob,
            delay_prob=self.delay_prob,
            delay_time=self.delay_time,
            rules=tuple(r for r in self.rules if r.src is None or r.src == rank),
            state_corruptions=tuple(
                c for c in self._corruptions if c.rank == rank
            ),
        )

    # ------------------------------------------------------------------ #
    # message faults (consulted by Scheduler._post_send)
    # ------------------------------------------------------------------ #
    def next_action(self, src: int, dst: int, tag: int) -> str:
        """Decide the fate of one posted message (counts it in stats)."""
        self.stats.messages_seen += 1
        for i, rule in enumerate(self.rules):
            if rule.matches(src, dst, tag):
                self._rule_hits[i] += 1
                if rule.nth is None or self._rule_hits[i] == rule.nth:
                    self._count(rule.kind)
                    return rule.kind
        if self.drop_prob or self.duplicate_prob or self.corrupt_prob or self.delay_prob:
            u = float(self._rng.random())
            edge = self.drop_prob
            if u < edge:
                self._count(DROP)
                return DROP
            edge += self.duplicate_prob
            if u < edge:
                self._count(DUPLICATE)
                return DUPLICATE
            edge += self.corrupt_prob
            if u < edge:
                self._count(CORRUPT)
                return CORRUPT
            edge += self.delay_prob
            if u < edge:
                self._count(DELAY)
                return DELAY
        return DELIVER

    def _count(self, kind: str) -> None:
        if kind == DROP:
            self.stats.dropped += 1
        elif kind == DUPLICATE:
            self.stats.duplicated += 1
        elif kind == CORRUPT:
            self.stats.corrupted += 1
        elif kind == DELAY:
            self.stats.delayed += 1

    def delay_for(self) -> float:
        """Extra latency for a delayed message (0.5x..1.5x ``delay_time``)."""
        return self.delay_time * (0.5 + float(self._rng.random()))

    def corrupt_payload(self, payload: Any) -> Any:
        """Return a corrupted deep-ish copy of ``payload``.

        One leaf value is perturbed by a large seeded amount; container
        structure is preserved so the receiver cannot tell from the shape.
        """
        if payload is None:
            return None
        if isinstance(payload, np.ndarray):
            out = payload.copy()
            if out.size:
                idx = int(self._rng.integers(out.size))
                flat = out.reshape(-1)
                flat[idx] = self._perturb(float(flat[idx]))
            return out
        if isinstance(payload, (bool, int, float, complex, np.generic)):
            return self._perturb(float(payload))
        if isinstance(payload, (tuple, list)):
            items = list(payload)
            if items:
                idx = int(self._rng.integers(len(items)))
                items[idx] = self.corrupt_payload(items[idx])
            return type(payload)(items)
        if isinstance(payload, dict):
            keys = sorted(payload, key=repr)
            out_d = dict(payload)
            if keys:
                k = keys[int(self._rng.integers(len(keys)))]
                out_d[k] = self.corrupt_payload(out_d[k])
            return out_d
        return payload  # opaque object: leave as-is

    def _perturb(self, value: float) -> float:
        noise = float(self._rng.standard_normal())
        return value + (1.0 + abs(value)) * (100.0 + 100.0 * abs(noise))

    # ------------------------------------------------------------------ #
    # fail-stop crashes (consulted by the Scheduler)
    # ------------------------------------------------------------------ #
    def crash_due(self, rank: int, now: float) -> bool:
        """Whether ``rank`` has a scheduled crash at or before ``now``."""
        t = self._crashes.get(rank)
        return t is not None and now >= t

    def has_scheduled_crash(self, rank: int) -> bool:
        return rank in self._crashes

    def scheduled_crash_time(self, rank: int) -> float:
        """The scheduled crash time for ``rank`` (KeyError if none)."""
        return self._crashes[rank]

    def fire_crash(self, rank: int) -> float:
        """Consume ``rank``'s scheduled crash; returns the crash time.

        Consumed-once: after a rollback-restart recovery the replacement
        rank does not crash again.
        """
        t = self._crashes.pop(rank)
        self.stats.crashed_ranks.append(rank)
        return t

    # ------------------------------------------------------------------ #
    # slowdowns / stragglers (consulted by the substrates)
    # ------------------------------------------------------------------ #
    def slowdown_for(self, rank: int) -> Optional[RankSlowdown]:
        """The pending slowdown scheduled for ``rank`` (``None`` if none)."""
        return self._slowdowns.get(rank)

    def slowdown_factor(self, rank: int, now: float) -> float:
        """The compute-time dilation factor in force on ``rank`` at ``now``.

        1.0 before the slowdown's start time (or when none is scheduled).
        """
        s = self._slowdowns.get(rank)
        if s is None or now < s.at_time:
            return 1.0
        return s.factor

    def drop_slowdown(self, rank: int) -> Optional[RankSlowdown]:
        """Consume ``rank``'s scheduled slowdown (``None`` if none).

        Consumed-once like crashes: after the recovery driver replaces or
        sidelines a straggler, the replacement does not re-straggle.
        """
        return self._slowdowns.pop(rank, None)

    # ------------------------------------------------------------------ #
    # silent state corruption (consulted by the solvers)
    # ------------------------------------------------------------------ #
    def take_state_corruption(
        self, iteration: int, rank: Optional[int] = None
    ) -> Optional[StateCorruption]:
        """Pop the corruption scheduled for ``iteration`` (and ``rank``).

        HPF solvers pass ``rank=None`` (global state, any entry matches);
        SPMD rank programs pass their own rank so only the targeted rank
        applies the perturbation.  Consumed-once, so a rolled-back solver
        does not re-corrupt itself on the replayed iterations.
        """
        for i, c in enumerate(self._corruptions):
            if c.iteration == iteration and (rank is None or c.rank == rank):
                self.stats.state_corruptions += 1
                return self._corruptions.pop(i)
        return None

    def draw_index(self, n: int) -> int:
        """Seeded index draw in ``[0, n)`` for choosing a victim entry."""
        if n < 1:
            raise ValueError("n must be positive")
        return int(self._rng.integers(n))

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan(seed={self.seed}, drop={self.drop_prob}, "
            f"dup={self.duplicate_prob}, corrupt={self.corrupt_prob}, "
            f"delay={self.delay_prob}, rules={len(self.rules)}, "
            f"crashes={sorted(self._crashes)}, "
            f"slowdowns={sorted(self._slowdowns)}, "
            f"state_corruptions={len(self._corruptions)})"
        )
