"""Interconnection topologies for the simulated multicomputer.

The paper derives collective costs on a hypercube ("on a hypercube
architecture it is done in ``t_start_up * log N_P`` time"); we also provide
ring, 2-D mesh and fully-connected networks so benchmarks can show how the
claims generalise.  A topology knows its size, the hop distance between two
ranks, each rank's neighbours and its diameter; the collective-algorithm
module uses those to price communication.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List

__all__ = [
    "Topology",
    "Hypercube",
    "Ring",
    "Mesh2D",
    "Complete",
    "make_topology",
    "ceil_log2",
]


def ceil_log2(p: int) -> int:
    """``ceil(log2(p))`` for ``p >= 1`` -- the number of tree stages."""
    if p < 1:
        raise ValueError("p must be >= 1")
    return max(1, math.ceil(math.log2(p))) if p > 1 else 0


class Topology(ABC):
    """Abstract interconnect: rank count plus a hop metric."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("topology size must be >= 1")
        self._size = size

    @property
    def size(self) -> int:
        """Number of processors in the network."""
        return self._size

    @property
    def name(self) -> str:
        return type(self).__name__.lower()

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Number of links on the route from ``src`` to ``dst`` (0 if equal)."""

    @abstractmethod
    def neighbors(self, rank: int) -> List[int]:
        """Directly connected ranks."""

    @property
    @abstractmethod
    def diameter(self) -> int:
        """Maximum hop distance between any two ranks."""

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._size:
            raise ValueError(f"rank {rank} out of range for size {self._size}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(size={self._size})"


class Hypercube(Topology):
    """Binary hypercube; requires a power-of-two number of processors."""

    def __init__(self, size: int):
        super().__init__(size)
        if size & (size - 1):
            raise ValueError(f"hypercube size must be a power of two, got {size}")
        self._dim = size.bit_length() - 1

    @property
    def dimension(self) -> int:
        """Number of hypercube dimensions (``log2(size)``)."""
        return self._dim

    def hops(self, src: int, dst: int) -> int:
        self._check_rank(src)
        self._check_rank(dst)
        return bin(src ^ dst).count("1")

    def neighbors(self, rank: int) -> List[int]:
        self._check_rank(rank)
        return [rank ^ (1 << d) for d in range(self._dim)]

    @property
    def diameter(self) -> int:
        return self._dim


class Ring(Topology):
    """Bidirectional ring."""

    def hops(self, src: int, dst: int) -> int:
        self._check_rank(src)
        self._check_rank(dst)
        d = abs(src - dst)
        return min(d, self._size - d)

    def neighbors(self, rank: int) -> List[int]:
        self._check_rank(rank)
        if self._size == 1:
            return []
        if self._size == 2:
            return [1 - rank]
        return [(rank - 1) % self._size, (rank + 1) % self._size]

    @property
    def diameter(self) -> int:
        return self._size // 2


class Mesh2D(Topology):
    """2-D mesh (no wraparound) of ``rows x cols`` processors."""

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("mesh dimensions must be >= 1")
        super().__init__(rows * cols)
        self.rows = rows
        self.cols = cols

    def coords(self, rank: int):
        """(row, col) coordinates of ``rank`` in row-major order."""
        self._check_rank(rank)
        return divmod(rank, self.cols)

    def hops(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def neighbors(self, rank: int) -> List[int]:
        r, c = self.coords(rank)
        out = []
        if r > 0:
            out.append(rank - self.cols)
        if r < self.rows - 1:
            out.append(rank + self.cols)
        if c > 0:
            out.append(rank - 1)
        if c < self.cols - 1:
            out.append(rank + 1)
        return out

    @property
    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mesh2D({self.rows}x{self.cols})"


class Complete(Topology):
    """Fully connected network: every pair one hop apart."""

    def hops(self, src: int, dst: int) -> int:
        self._check_rank(src)
        self._check_rank(dst)
        return 0 if src == dst else 1

    def neighbors(self, rank: int) -> List[int]:
        self._check_rank(rank)
        return [r for r in range(self._size) if r != rank]

    @property
    def diameter(self) -> int:
        return 0 if self._size == 1 else 1


def make_topology(spec, size: int) -> Topology:
    """Build a topology from a name or pass an instance through.

    Parameters
    ----------
    spec:
        A :class:`Topology` instance (returned as-is, ``size`` must match) or
        one of ``"hypercube"``, ``"ring"``, ``"mesh2d"``, ``"complete"``.
    size:
        Number of processors.

    Notes
    -----
    ``"mesh2d"`` picks the most-square factorisation of ``size``.
    """
    if isinstance(spec, Topology):
        if spec.size != size:
            raise ValueError(
                f"topology size {spec.size} does not match requested {size}"
            )
        return spec
    name = str(spec).lower()
    if name == "hypercube":
        return Hypercube(size)
    if name == "ring":
        return Ring(size)
    if name == "complete":
        return Complete(size)
    if name == "mesh2d":
        rows = int(math.isqrt(size))
        while size % rows:
            rows -= 1
        return Mesh2D(rows, size // rows)
    raise ValueError(f"unknown topology {spec!r}")
