"""Execution tracing: per-rank activity timelines for the simulated machine.

Attach a :class:`Tracer` to a machine and every charged operation records a
:class:`TraceEvent` (which rank, compute vs communication, start/end on the
simulated clock).  The tracer can then report per-rank utilisation -- the
quantitative face of the paper's load-balance discussion -- and render an
ASCII Gantt chart, which makes the difference between, say, the serialised
Scenario-2 loop and the privatised CSC loop visible at a glance::

    tracer = Tracer.attach(machine)
    ... run a solve ...
    print(tracer.ascii_gantt(width=72))

Legend: ``#`` compute, ``~`` communication, ``.`` idle.

A tracer can also serve as a free-standing timeline container (pass
``nprocs`` instead of a machine): the real-process execution backend
(:mod:`repro.backend.process`) fills one with *measured* wall-clock
intervals, so the same reporting -- utilisation, ASCII Gantt, and the
Chrome ``chrome://tracing`` / Perfetto JSON export of
:meth:`Tracer.to_chrome_trace` -- works for simulated and real runs alike.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One charged interval on one rank's timeline."""

    rank: int
    kind: str  # "compute" or a communication op name
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_compute(self) -> bool:
        return self.kind == "compute"


class Tracer:
    """Collects :class:`TraceEvent` records from an attached machine."""

    def __init__(self, machine=None, nprocs: Optional[int] = None):
        if machine is None and nprocs is None:
            raise ValueError("Tracer needs a machine or an explicit nprocs")
        self.machine = machine
        self.nprocs = int(machine.nprocs if machine is not None else nprocs)
        self.events: List[TraceEvent] = []

    @classmethod
    def attach(cls, machine) -> "Tracer":
        """Create a tracer and register it on ``machine``."""
        tracer = cls(machine)
        machine.tracer = tracer
        return tracer

    def detach(self) -> None:
        if getattr(self.machine, "tracer", None) is self:
            self.machine.tracer = None

    # ------------------------------------------------------------------ #
    def record(
        self, rank: int, kind: str, start: float, end: float, detail: str = ""
    ) -> None:
        if end > start:
            self.events.append(TraceEvent(rank, kind, start, end, detail))

    def clear(self) -> None:
        self.events.clear()

    # ------------------------------------------------------------------ #
    def span(self) -> float:
        """Simulated time covered by the trace."""
        if not self.events:
            return 0.0
        return max(e.end for e in self.events)

    def busy_time(self, rank: int, kind: Optional[str] = None) -> float:
        """Total charged time on ``rank`` (optionally one kind only)."""
        return sum(
            e.duration
            for e in self.events
            if e.rank == rank and (kind is None or e.kind == kind)
        )

    def utilization(self) -> np.ndarray:
        """Fraction of the trace span each rank spent busy."""
        span = self.span()
        out = np.zeros(self.nprocs)
        if span <= 0:
            return out
        for r in range(self.nprocs):
            out[r] = min(1.0, self.busy_time(r) / span)
        return out

    def compute_fraction(self) -> float:
        """Compute time as a fraction of all charged time (all ranks)."""
        total = sum(e.duration for e in self.events)
        if total == 0:
            return 0.0
        compute = sum(e.duration for e in self.events if e.is_compute)
        return compute / total

    # ------------------------------------------------------------------ #
    def ascii_gantt(self, width: int = 72) -> str:
        """Render per-rank timelines: ``#`` compute, ``~`` comm, ``.`` idle."""
        span = self.span()
        header = f"trace span: {span:.3e} s  (# compute, ~ comm, . idle)"
        if span <= 0 or width < 1:
            return header
        rows = [header]
        for r in range(self.nprocs):
            cells = [0.0] * width  # compute weight
            comm = [0.0] * width  # comm weight
            for e in self.events:
                if e.rank != r:
                    continue
                lo = int(e.start / span * width)
                hi = max(lo + 1, int(np.ceil(e.end / span * width)))
                for c in range(lo, min(hi, width)):
                    cell_start = c * span / width
                    cell_end = (c + 1) * span / width
                    overlap = min(e.end, cell_end) - max(e.start, cell_start)
                    if overlap <= 0:
                        continue
                    if e.is_compute:
                        cells[c] += overlap
                    else:
                        comm[c] += overlap
            cell_span = span / width
            line = "".join(
                "#" if cells[c] >= comm[c] and cells[c] > 0.25 * cell_span
                else "~" if comm[c] > 0.25 * cell_span
                else "."
                for c in range(width)
            )
            rows.append(f"rank {r:>3} |{line}|")
        return "\n".join(rows)

    # ------------------------------------------------------------------ #
    def to_chrome_trace(self, process_name: str = "repro") -> dict:
        """Export the timeline in Chrome trace-event JSON format.

        The result loads directly into ``chrome://tracing`` or Perfetto:
        one thread per rank, one complete ("X") event per
        :class:`TraceEvent`, timestamps converted from seconds to the
        format's microseconds.  Works for simulated clocks and for the
        measured wall-clock timelines of the process backend alike.
        """
        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        for r in range(self.nprocs):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": r,
                    "args": {"name": f"rank {r}"},
                }
            )
        for e in self.events:
            events.append(
                {
                    "name": e.kind if not e.detail else f"{e.kind} {e.detail}",
                    "cat": "compute" if e.is_compute else "comm",
                    "ph": "X",
                    "ts": e.start * 1e6,
                    "dur": e.duration * 1e6,
                    "pid": 0,
                    "tid": e.rank,
                    "args": {"detail": e.detail} if e.detail else {},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(
        self, path: Union[str, Path], process_name: str = "repro"
    ) -> Path:
        """Write :meth:`to_chrome_trace` JSON to ``path``; returns the path."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_chrome_trace(process_name)), encoding="utf-8"
        )
        return path

    def __len__(self) -> int:
        return len(self.events)
