"""The simulated distributed-memory multicomputer.

A :class:`Machine` is the substrate every distributed operation in this
package runs on.  It holds:

* a :class:`~repro.machine.topology.Topology` (hypercube by default, as in
  the paper's cost derivations),
* a :class:`~repro.machine.costmodel.CostModel`,
* one simulated clock per rank, and
* a :class:`~repro.machine.stats.MachineStats` accumulator.

Two usage styles share one machine:

1. the **HPF runtime** (:mod:`repro.hpf`) executes array operations
   globally and charges each rank's clock for its local work, invoking the
   machine's collective methods for communication -- this models the code an
   HPF compiler would emit under the owner-computes rule;
2. the **SPMD simulator** (:mod:`repro.machine.scheduler`) runs per-rank
   generator programs exchanging point-to-point messages and advances the
   same clocks -- this models the explicit message-passing programs the
   paper compares against.

``machine.elapsed()`` (the maximum rank clock) is the simulated parallel
wall time; ``machine.stats`` holds message/word/flop accounting.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from . import collectives as coll
from .collectives import CollectiveCost
from .costmodel import CostModel
from .stats import MachineStats
from .topology import Topology, make_topology

__all__ = ["Machine"]


class Machine:
    """Simulated multicomputer with per-rank clocks and cost accounting.

    Parameters
    ----------
    nprocs:
        Number of processors ``N_P``.
    topology:
        Topology name (``"hypercube"``, ``"ring"``, ``"mesh2d"``,
        ``"complete"``) or a :class:`Topology` instance.
    cost:
        The :class:`CostModel`; defaults model a 1990s multicomputer.
    """

    def __init__(
        self,
        nprocs: int = 4,
        topology: Union[str, Topology] = "hypercube",
        cost: Optional[CostModel] = None,
    ):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.topology = make_topology(topology, nprocs)
        self.cost = cost if cost is not None else CostModel()
        self.nprocs = nprocs
        self.clock = np.zeros(nprocs, dtype=float)
        self.stats = MachineStats(nprocs)
        #: optional Tracer (see repro.machine.trace) recording timelines
        self.tracer = None

    # ------------------------------------------------------------------ #
    # basics
    # ------------------------------------------------------------------ #
    @property
    def ranks(self) -> range:
        return range(self.nprocs)

    def elapsed(self) -> float:
        """Simulated parallel wall time so far (max over rank clocks)."""
        return float(self.clock.max())

    def reset(self) -> None:
        """Zero all clocks and statistics."""
        self.clock[:] = 0.0
        self.stats.reset()

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range (nprocs={self.nprocs})")

    # ------------------------------------------------------------------ #
    # computation charging
    # ------------------------------------------------------------------ #
    def charge_compute(self, rank: int, flops: float) -> None:
        """Charge ``flops`` of local work to one rank's clock."""
        self._check_rank(rank)
        if flops < 0:
            raise ValueError("flops must be non-negative")
        start = float(self.clock[rank])
        self.clock[rank] += self.cost.compute_time(flops)
        self.stats.record_flops(rank, flops)
        if self.tracer is not None:
            self.tracer.record(rank, "compute", start, float(self.clock[rank]))

    def charge_compute_all(self, flops: Union[float, Sequence[float], np.ndarray]) -> None:
        """Charge flops to every rank (scalar = same amount everywhere)."""
        arr = np.broadcast_to(np.asarray(flops, dtype=float), (self.nprocs,))
        if (arr < 0).any():
            raise ValueError("flops must be non-negative")
        starts = self.clock.copy()
        self.clock += arr * self.cost.t_flop
        self.stats.flops_per_rank += arr
        if self.tracer is not None:
            for r in self.ranks:
                self.tracer.record(r, "compute", float(starts[r]), float(self.clock[r]))

    def charge_serialized_compute(self, flops_per_rank: Sequence[float]) -> None:
        """Charge work that must execute *serially* across ranks.

        Models loops the paper identifies as unparallelisable (the Scenario-2
        column-wise loop): every rank's clock advances by the *sum* of all
        ranks' work, because each waits for the previous.
        """
        arr = np.asarray(flops_per_rank, dtype=float)
        if arr.shape != (self.nprocs,):
            raise ValueError("flops_per_rank must have one entry per rank")
        total_time = float(arr.sum()) * self.cost.t_flop
        start = self.elapsed()
        self.clock[:] = start + total_time
        self.stats.flops_per_rank += arr
        if self.tracer is not None:
            # the work executes one rank after another
            offset = start
            for r in self.ranks:
                dur = float(arr[r]) * self.cost.t_flop
                self.tracer.record(r, "compute", offset, offset + dur,
                                   "serialized")
                offset += dur

    def charge_storage(self, rank: int, words: float) -> None:
        """Track temporary storage allocated on ``rank`` (words)."""
        self._check_rank(rank)
        self.stats.record_storage(rank, words)

    def charge_storage_all(self, words_per_rank: float) -> None:
        for r in self.ranks:
            self.stats.record_storage(r, words_per_rank)

    def charge_comm_interval(
        self,
        op: str,
        messages: int,
        words: float,
        time: float,
        tag: Optional[str] = None,
        participants: Optional[Sequence[int]] = None,
    ) -> None:
        """Charge an irregular communication pattern as one timed interval.

        Used by strategies whose traffic does not map onto a standard
        collective (the Scenario-2 per-column updates, the CSR element
        prefetch, halo exchanges, redistribution): all clocks advance by
        ``time`` and the stats record the message/word totals.

        ``participants`` names the ranks actually driving traffic; only
        they appear busy in the trace (the rest are waiting).  ``None``
        leaves the interval untraced -- serialised patterns where no rank
        is meaningfully "busy" for the whole span.
        """
        if time < 0 or words < 0 or messages < 0:
            raise ValueError("comm interval quantities must be non-negative")
        start = self.elapsed()
        self.clock[:] = start + time
        self.stats.record_comm(op, messages, words, time, tag)
        if self.tracer is not None and time > 0 and participants is not None:
            for r in participants:
                self._check_rank(r)
                self.tracer.record(r, op, start, start + time, tag or "")

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #
    def send_recv(
        self, src: int, dst: int, nwords: float, tag: Optional[str] = None
    ) -> float:
        """Synchronous point-to-point transfer; returns completion time.

        Both clocks advance to ``max(clock[src], clock[dst]) + message_time``
        (rendezvous semantics).
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            return float(self.clock[src])
        hops = max(1, self.topology.hops(src, dst))
        t = self.cost.message_time(nwords, hops)
        begin = max(self.clock[src], self.clock[dst])
        done = begin + t
        self.clock[src] = done
        self.clock[dst] = done
        self.stats.record_comm("p2p", 1, nwords, t, tag)
        if self.tracer is not None:
            self.tracer.record(src, "p2p", begin, done, f"-> {dst}")
            self.tracer.record(dst, "p2p", begin, done, f"<- {src}")
        return done

    # ------------------------------------------------------------------ #
    # collectives (cost-model level, used by the HPF runtime)
    # ------------------------------------------------------------------ #
    def _apply_collective(self, op: str, c: CollectiveCost, tag: Optional[str]) -> None:
        start = self.elapsed()  # collectives synchronise all ranks
        self.clock[:] = start + c.time
        self.stats.record_comm(op, c.messages, c.words, c.time, tag)
        if self.tracer is not None:
            for r in self.ranks:
                self.tracer.record(r, op, start, start + c.time, tag or "")

    def broadcast(self, nwords: float, root: int = 0, tag: Optional[str] = None) -> None:
        """One-to-all broadcast of ``nwords`` words from ``root``."""
        self._check_rank(root)
        self._apply_collective(
            "broadcast", coll.broadcast_cost(self.topology, self.cost, nwords), tag
        )

    def reduce(self, nwords: float, root: int = 0, tag: Optional[str] = None) -> None:
        """All-to-one reduction of ``nwords`` words to ``root``."""
        self._check_rank(root)
        self._apply_collective(
            "reduce", coll.reduce_cost(self.topology, self.cost, nwords), tag
        )

    def allreduce(self, nwords: float, tag: Optional[str] = None) -> None:
        """All-reduce of ``nwords`` words.

        This is the merge phase of the paper's inner products: "the merge
        phase for adding up the partial results from processors involves
        communication overhead ... on a hypercube architecture it is done in
        ``t_start_up * log N_P`` time".
        """
        self._apply_collective(
            "allreduce", coll.allreduce_cost(self.topology, self.cost, nwords), tag
        )

    def allgather(self, nwords_per_rank: float, tag: Optional[str] = None) -> None:
        """All-to-all broadcast; every rank ends with all blocks.

        Scenario 1 (Figure 3) uses this to replicate the vector ``p``.
        """
        self._apply_collective(
            "allgather",
            coll.allgather_cost(self.topology, self.cost, nwords_per_rank),
            tag,
        )

    def reduce_scatter(self, nwords_total: float, tag: Optional[str] = None) -> None:
        """Combine P vectors of ``nwords_total`` words; each rank keeps its block.

        The merge step of ``PRIVATE ... WITH MERGE(+)`` (Figure 5).
        """
        self._apply_collective(
            "reduce_scatter",
            coll.reduce_scatter_cost(self.topology, self.cost, nwords_total),
            tag,
        )

    def gather(self, nwords_per_rank: float, root: int = 0, tag: Optional[str] = None) -> None:
        self._check_rank(root)
        self._apply_collective(
            "gather", coll.gather_cost(self.topology, self.cost, nwords_per_rank), tag
        )

    def scatter(self, nwords_per_rank: float, root: int = 0, tag: Optional[str] = None) -> None:
        self._check_rank(root)
        self._apply_collective(
            "scatter", coll.scatter_cost(self.topology, self.cost, nwords_per_rank), tag
        )

    def alltoall(self, nwords_per_pair: float, tag: Optional[str] = None) -> None:
        self._apply_collective(
            "alltoall",
            coll.alltoall_cost(self.topology, self.cost, nwords_per_pair),
            tag,
        )

    def barrier(self, tag: Optional[str] = None) -> None:
        self._apply_collective(
            "barrier", coll.barrier_cost(self.topology, self.cost), tag
        )

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine(nprocs={self.nprocs}, topology={self.topology!r}, "
            f"elapsed={self.elapsed():.3e}s)"
        )
