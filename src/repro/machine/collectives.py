"""Closed-form collective-communication algorithms per topology.

Each function prices one collective on a given :class:`Topology` under a
:class:`CostModel`, returning a :class:`CollectiveCost` (elapsed time,
message count, total words moved).  The algorithms are the standard ones
from Kumar et al., *Introduction to Parallel Computing* (the paper's
reference [17]):

* hypercube: binomial-tree broadcast/reduce, recursive-doubling
  allgather/allreduce, pairwise-exchange all-to-all;
* ring: pipeline / ring algorithms;
* 2-D mesh: row-then-column decompositions of the hypercube algorithms;
* complete graph: log-tree latency with single-hop links.

The paper's own Scenario-1 formula, ``t_startup * log N_P + t_comm * n/N_P``
per broadcast stage, is kept separately in :mod:`repro.analysis.cost_model`;
benchmark E4/E5 compares it with these algorithmic costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .costmodel import CostModel
from .topology import Hypercube, Mesh2D, Ring, Topology, ceil_log2

__all__ = [
    "CollectiveCost",
    "broadcast_cost",
    "reduce_cost",
    "allreduce_cost",
    "allgather_cost",
    "reduce_scatter_cost",
    "gather_cost",
    "scatter_cost",
    "alltoall_cost",
    "barrier_cost",
]


@dataclass(frozen=True)
class CollectiveCost:
    """Price of one collective operation."""

    time: float
    messages: int
    words: float

    def __add__(self, other: "CollectiveCost") -> "CollectiveCost":
        return CollectiveCost(
            self.time + other.time,
            self.messages + other.messages,
            self.words + other.words,
        )


def _zero() -> CollectiveCost:
    return CollectiveCost(0.0, 0, 0.0)


def _stages(topology: Topology) -> int:
    """Number of tree stages for latency-bound collectives."""
    p = topology.size
    if p == 1:
        return 0
    if isinstance(topology, Ring):
        return p - 1
    if isinstance(topology, Mesh2D):
        return (topology.rows - 1) + (topology.cols - 1) if topology.rows > 1 or topology.cols > 1 else 0
    # hypercube and complete use a log tree
    return ceil_log2(p)


def broadcast_cost(topology: Topology, cost: CostModel, nwords: float) -> CollectiveCost:
    """One-to-all broadcast of ``nwords`` words.

    Binomial tree on hypercube/complete (``log P`` stages of one message
    each), pipeline on ring, row+column tree on mesh.
    """
    p = topology.size
    if p == 1:
        return _zero()
    if isinstance(topology, Ring):
        # send both ways around the ring: ceil((p-1)/2) sequential hops,
        # p-1 messages in total.
        stages = math.ceil((p - 1) / 2)
        msgs = p - 1
        return CollectiveCost(stages * cost.message_time(nwords), msgs, msgs * nwords)
    if isinstance(topology, Mesh2D):
        row_stages = ceil_log2(topology.cols)
        col_stages = ceil_log2(topology.rows)
        stages = row_stages + col_stages
        msgs = p - 1
        return CollectiveCost(stages * cost.message_time(nwords), msgs, msgs * nwords)
    stages = ceil_log2(p)
    msgs = p - 1
    return CollectiveCost(stages * cost.message_time(nwords), msgs, msgs * nwords)


def reduce_cost(topology: Topology, cost: CostModel, nwords: float) -> CollectiveCost:
    """All-to-one reduction: broadcast pattern reversed plus combine flops."""
    base = broadcast_cost(topology, cost, nwords)
    if topology.size == 1:
        return base
    stages = _reduce_stages(topology)
    return CollectiveCost(
        base.time + stages * nwords * cost.t_flop, base.messages, base.words
    )


def _reduce_stages(topology: Topology) -> int:
    p = topology.size
    if p == 1:
        return 0
    if isinstance(topology, Ring):
        return math.ceil((p - 1) / 2)
    if isinstance(topology, Mesh2D):
        return ceil_log2(topology.cols) + ceil_log2(topology.rows)
    return ceil_log2(p)


def _fold_doubling(p: int):
    """Structure of fold-based recursive doubling among ``p`` ranks.

    Returns ``(latency_stages, combine_stages, messages)``.  With
    ``c = 2**floor(log2 p)`` core ranks and ``f = p - c`` extras: a fold
    stage (``f`` messages, one combine), ``log2 c`` exchange stages
    (``c`` messages each, one combine each) and an unfold stage (``f``
    messages, no combine).  For a power of two this reduces to the
    textbook ``log2 p`` stages of ``p`` messages; the naive
    ``ceil_log2(p) * p`` count overcounts every non-power-of-two machine
    (e.g. 18 instead of 12 messages for ``p = 6``).
    """
    if p == 1:
        return 0, 0, 0
    c = 1 << (p.bit_length() - 1)  # largest power of two <= p
    f = p - c
    k = c.bit_length() - 1  # log2 c
    messages = 2 * f + k * c
    latency_stages = k + (2 if f else 0)
    combine_stages = k + (1 if f else 0)
    return latency_stages, combine_stages, messages


def allreduce_cost(topology: Topology, cost: CostModel, nwords: float) -> CollectiveCost:
    """All-reduce of ``nwords`` words (every rank ends with the result).

    Recursive doubling on hypercube/complete: ``log P`` exchange stages,
    each moving ``nwords`` both ways and combining; non-power-of-two rank
    counts fold the extras in and out (:func:`_fold_doubling`), matching
    the message count a scheduler run of
    :func:`repro.machine.spmd.allreduce_doubling` records.  Ring:
    reduce-scatter + allgather.  Mesh: row and column recursive doubling.
    """
    p = topology.size
    if p == 1:
        return _zero()
    if isinstance(topology, Ring):
        # reduce-scatter + allgather, each (p-1) stages of nwords/p words
        m = nwords / p
        stage_t = cost.message_time(m)
        time = 2 * (p - 1) * stage_t + (p - 1) * m * cost.t_flop
        msgs = 2 * p * (p - 1)
        return CollectiveCost(time, msgs, msgs * m)
    if isinstance(topology, Mesh2D):
        # fold-based doubling along rows, then along columns: each of the
        # `rows` row groups folds over `cols` ranks and vice versa
        rs, rc, rm = _fold_doubling(topology.cols)
        cs, cc, cm = _fold_doubling(topology.rows)
        stages = rs + cs
        combines = rc + cc
        msgs = rm * topology.rows + cm * topology.cols
    else:
        stages, combines, per_group = _fold_doubling(p)
        msgs = per_group
    time = stages * cost.message_time(nwords) + combines * nwords * cost.t_flop
    return CollectiveCost(time, msgs, msgs * nwords)


def allgather_cost(
    topology: Topology, cost: CostModel, nwords_per_rank: float
) -> CollectiveCost:
    """All-to-all broadcast: every rank contributes ``nwords_per_rank`` words
    and ends with all ``P * nwords_per_rank`` words.

    Recursive doubling on hypercube: stage ``i`` exchanges ``2**i * m`` words,
    total time ``log P * t_s + (P-1) * m * t_c``.  Ring: ``P-1`` stages of
    ``m`` words.  This is the operation Scenario 1 (Figure 3) requires to
    replicate the vector ``p``.
    """
    p = topology.size
    m = nwords_per_rank
    if p == 1:
        return _zero()
    if isinstance(topology, Ring):
        time = (p - 1) * cost.message_time(m)
        msgs = p * (p - 1)
        return CollectiveCost(time, msgs, msgs * m)
    if isinstance(topology, Mesh2D):
        # allgather along rows then along columns; *every* rank takes part
        # in both phases (there are `rows` simultaneous row groups and
        # `cols` column groups), so whole-machine totals scale the
        # per-rank counts by p -- scaling by the group count alone
        # undercounted machine totals by the other mesh dimension
        rc = _doubling_allgather(topology.cols, cost, m)
        cc = _doubling_allgather(topology.rows, cost, m * topology.cols)
        return _scale_ranks(rc, p) + _scale_ranks(cc, p)
    return _scale_ranks(_doubling_allgather(p, cost, m), p)


def _doubling_allgather(p: int, cost: CostModel, m: float) -> CollectiveCost:
    """Per-rank recursive-doubling allgather cost among ``p`` ranks."""
    if p == 1:
        return _zero()
    stages = ceil_log2(p)
    time = stages * cost.t_startup + (p - 1) * m * cost.t_comm
    # one message per rank per stage; words double each stage
    msgs = stages
    words = (p - 1) * m
    return CollectiveCost(time, msgs, words)


def _scale_ranks(per_rank: CollectiveCost, p: int) -> CollectiveCost:
    """Scale per-rank message/word counts to whole-machine totals."""
    return CollectiveCost(per_rank.time, per_rank.messages * p, per_rank.words * p)


def reduce_scatter_cost(
    topology: Topology, cost: CostModel, nwords_total: float
) -> CollectiveCost:
    """Reduce ``nwords_total``-word vectors from all ranks, leaving each rank
    with its ``nwords_total / P`` block of the sum.

    This is the merge step of the paper's ``PRIVATE ... WITH MERGE(+)``
    extension (Figure 5): per-processor private copies of ``q`` are combined
    into the distributed global ``q``.
    """
    p = topology.size
    if p == 1:
        return _zero()
    m = nwords_total / p
    if isinstance(topology, Ring):
        time = (p - 1) * (cost.message_time(m) + m * cost.t_flop)
        msgs = p * (p - 1)
        return CollectiveCost(time, msgs, msgs * m)
    if isinstance(topology, Mesh2D):
        rs, _, rm = _fold_doubling(topology.cols)
        cs, _, cm = _fold_doubling(topology.rows)
        stages = rs + cs
        msgs = rm * topology.rows + cm * topology.cols
    else:
        stages, _, msgs = _fold_doubling(p)
    # recursive halving: stage i moves nwords_total / 2**(i+1)
    time = stages * cost.t_startup + (p - 1) / p * nwords_total * (
        cost.t_comm + cost.t_flop
    )
    words = (p - 1) * nwords_total  # each rank moves (p-1)/p * n words
    return CollectiveCost(time, msgs, words)


def gather_cost(
    topology: Topology, cost: CostModel, nwords_per_rank: float
) -> CollectiveCost:
    """All-to-one gather of ``nwords_per_rank`` words from each rank."""
    p = topology.size
    if p == 1:
        return _zero()
    m = nwords_per_rank
    stages = _stages(topology)
    # binomial gather: stage i receives 2**i * m words
    time = stages * cost.t_startup + (p - 1) * m * cost.t_comm
    msgs = p - 1
    return CollectiveCost(time, msgs, (p - 1) * m)


def scatter_cost(
    topology: Topology, cost: CostModel, nwords_per_rank: float
) -> CollectiveCost:
    """One-to-all personalised scatter (mirror of gather)."""
    return gather_cost(topology, cost, nwords_per_rank)


def alltoall_cost(
    topology: Topology, cost: CostModel, nwords_per_pair: float
) -> CollectiveCost:
    """All-to-all personalised exchange, ``nwords_per_pair`` per (src, dst)."""
    p = topology.size
    if p == 1:
        return _zero()
    m = nwords_per_pair
    if isinstance(topology, Hypercube):
        stages = ceil_log2(p)
        # pairwise exchange: log P stages of p/2 * m words per rank
        time = stages * cost.message_time(m * p / 2)
        msgs = stages * p
        return CollectiveCost(time, msgs, msgs * m * p / 2)
    # generic: p-1 rounds of pairwise sends
    time = (p - 1) * cost.message_time(m)
    msgs = p * (p - 1)
    return CollectiveCost(time, msgs, msgs * m)


def barrier_cost(topology: Topology, cost: CostModel) -> CollectiveCost:
    """Barrier = 1-word allreduce."""
    return allreduce_cost(topology, cost, 1.0)
