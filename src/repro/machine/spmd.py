"""Collective operations for SPMD rank programs, built from point-to-point.

These are generator helpers used inside rank programs with ``yield from``::

    total = yield from spmd.allreduce_sum(rank, size, local_dot)

Algorithms are the standard binomial-tree / recursive patterns (Kumar et
al. [17] in the paper), so the *measured* cost of, e.g., an allreduce in the
event simulator can be compared against the closed-form hypercube formulas
of :mod:`repro.machine.collectives` -- that comparison is benchmark E4.

All helpers work for any rank count (not just powers of two) and combine
NumPy arrays or Python scalars with ``+`` by default.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

import numpy as np

from .events import Op, Recv, Send

__all__ = [
    "bcast",
    "reduce_to_root",
    "allreduce_sum",
    "allreduce_vec",
    "allreduce_doubling",
    "gather_to_root",
    "allgather",
    "allgather_bruck",
    "allgather_grid",
    "scatter_from_root",
]

GenOp = Generator[Op, Any, Any]


def _combine_default(a: Any, b: Any) -> Any:
    return a + b


def bcast(rank: int, size: int, value: Any, root: int = 0, tag: int = 1) -> GenOp:
    """Binomial-tree broadcast; returns the broadcast value on every rank."""
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank < mask:
            partner = vrank + mask
            if partner < size:
                yield Send(dest=(partner + root) % size, payload=value, tag=tag)
        elif vrank < 2 * mask:
            value = yield Recv(source=((vrank - mask) + root) % size, tag=tag)
        mask <<= 1
    return value


def reduce_to_root(
    rank: int,
    size: int,
    value: Any,
    root: int = 0,
    op: Callable[[Any, Any], Any] = _combine_default,
    tag: int = 2,
) -> GenOp:
    """Binomial-tree reduction; ``root`` returns the combined value, others None."""
    vrank = (rank - root) % size
    mask = 1
    result = value
    while mask < size:
        if vrank & mask:
            yield Send(dest=((vrank - mask) + root) % size, payload=result, tag=tag)
            return None
        partner = vrank + mask
        if partner < size:
            other = yield Recv(source=(partner + root) % size, tag=tag)
            result = op(result, other)
        mask <<= 1
    return result if vrank == 0 else None


def allreduce_sum(
    rank: int,
    size: int,
    value: Any,
    op: Callable[[Any, Any], Any] = _combine_default,
    tag: int = 3,
) -> GenOp:
    """All-reduce: reduce to rank 0, then broadcast the result.

    Recursive doubling would halve the latency on a hypercube; the
    reduce+bcast composition is used because it is correct for any rank
    count, and its cost (2 log P stages) is what benchmark E4 checks against
    the closed-form model.
    """
    reduced = yield from reduce_to_root(rank, size, value, root=0, op=op, tag=tag)
    result = yield from bcast(rank, size, reduced, root=0, tag=tag + 1)
    return result


def allreduce_vec(
    rank: int, size: int, values: Any, tag: int = 3
) -> GenOp:
    """Batched all-reduce: ``k`` scalars packed into one message.

    The communication-avoiding CG variants fuse every per-iteration inner
    product into a single reduction; this is the primitive they ride on.
    The wire format is a flat float64 vector -- slot ``j`` of the result is
    the sum over ranks of slot ``j`` of the contribution, so callers can
    pack unrelated reductions (dots, norms, ABFT duplicate sums) into one
    ``2 log P``-stage tree instead of paying ``t_startup`` per scalar.
    Every rank must contribute the same slot count.
    """
    vec = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    if vec.ndim != 1 or vec.size == 0:
        raise ValueError(
            f"allreduce_vec packs a non-empty 1-D scalar vector, got "
            f"shape {vec.shape}"
        )

    # inline binomial reduce (same tree as reduce_to_root) so a slot
    # mismatch can name the rank whose subtree contributed the bad shape
    vrank = rank % size
    mask = 1
    result = vec
    while mask < size:
        if vrank & mask:
            yield Send(dest=vrank - mask, payload=result, tag=tag)
            result = None
            break
        partner = vrank + mask
        if partner < size:
            other = yield Recv(source=partner, tag=tag)
            other = np.asarray(other)
            if other.shape != result.shape:
                raise ValueError(
                    f"allreduce_vec slot mismatch: rank {partner} "
                    f"contributed {other.shape}, rank {rank} expected "
                    f"{result.shape}"
                )
            result = result + other
        mask <<= 1
    result = yield from bcast(rank, size, result, root=0, tag=tag + 1)
    return result


def allreduce_doubling(
    rank: int,
    size: int,
    value: Any,
    op: Callable[[Any, Any], Any] = _combine_default,
    tag: int = 12,
) -> GenOp:
    """Fold-based recursive-doubling all-reduce, correct for any ``P``.

    With ``c = 2**floor(log2 P)`` and ``f = P - c`` extra ranks: the extras
    first *fold* their contribution into rank ``r - c``, the ``c`` core
    ranks run ``log2 c`` pairwise exchange stages, and the result is
    *unfolded* back to the extras.  Message total is ``2 f + c log2 c`` --
    the count :func:`repro.machine.collectives.allreduce_cost` models,
    which is what lets a counted scheduler run pin the closed form for
    non-power-of-two machines.
    """
    if size == 1:
        return value
    c = 1 << (size.bit_length() - 1)  # largest power of two <= size
    extras = size - c
    result = value
    # fold: the f extra ranks donate their value to their core partner
    if rank >= c:
        yield Send(dest=rank - c, payload=result, tag=tag)
    elif rank < extras:
        other = yield Recv(source=rank + c, tag=tag)
        result = op(result, other)
    # recursive doubling among the c core ranks
    if rank < c:
        mask = 1
        while mask < c:
            partner = rank ^ mask
            yield Send(dest=partner, payload=result, tag=tag)
            other = yield Recv(source=partner, tag=tag)
            result = op(result, other)
            mask <<= 1
    # unfold: core partners hand the finished result back to the extras
    if rank < extras:
        yield Send(dest=rank + c, payload=result, tag=tag + 1)
    elif rank >= c:
        result = yield Recv(source=rank - c, tag=tag + 1)
    return result


def gather_to_root(
    rank: int, size: int, value: Any, root: int = 0, tag: int = 5
) -> GenOp:
    """Binomial-tree gather; ``root`` returns ``[value_0, ..., value_{P-1}]``.

    Each rank accumulates a dict of contributions from its subtree and
    forwards it, so message sizes grow up the tree exactly as in the
    textbook algorithm.
    """
    vrank = (rank - root) % size
    contributions = {rank: value}
    mask = 1
    while mask < size:
        if vrank & mask:
            yield Send(
                dest=((vrank - mask) + root) % size, payload=contributions, tag=tag
            )
            return None
        partner = vrank + mask
        if partner < size:
            sub = yield Recv(source=(partner + root) % size, tag=tag)
            contributions.update(sub)
        mask <<= 1
    if vrank == 0:
        return [contributions[r] for r in range(size)]
    return None


def allgather(rank: int, size: int, value: Any, tag: int = 7) -> GenOp:
    """All-to-all broadcast: every rank returns the full list of values.

    Gather to rank 0 then broadcast the list -- the "tree-like broadcasting
    mechanism" the paper assumes for replicating the vector ``p`` in
    Scenario 1.
    """
    gathered = yield from gather_to_root(rank, size, value, root=0, tag=tag)
    result = yield from bcast(rank, size, gathered, root=0, tag=tag + 1)
    return result


def _bruck_allgather_group(
    me: int, group: List[int], value: Any, tag: int
) -> GenOp:
    """Bruck all-gather among the ranks listed in ``group``.

    ``me`` is this rank's position within ``group``.  Each of the
    ``ceil(log2 g)`` rounds sends one message of the blocks accumulated so
    far to the rank ``step`` positions behind, so every rank sends exactly
    ``ceil(log2 g)`` messages and moves ``(g - 1)`` blocks in total -- the
    per-rank structure :func:`repro.machine.collectives._doubling_allgather`
    prices.  Returns the per-rank values in group order.
    """
    g = len(group)
    blocks = [value]  # blocks[j] holds the value of group rank (me + j) % g
    step = 1
    while step < g:
        count = min(step, g - step)
        dst = group[(me - step) % g]
        src = group[(me + step) % g]
        yield Send(dest=dst, payload=blocks[:count], tag=tag)
        incoming = yield Recv(source=src, tag=tag)
        blocks.extend(incoming)
        step <<= 1
    return [blocks[(j - me) % g] for j in range(g)]


def allgather_bruck(rank: int, size: int, value: Any, tag: int = 16) -> GenOp:
    """Recursive-doubling (Bruck) all-gather, correct for any rank count.

    The measured counterpart of the hypercube/complete branch of
    :func:`repro.machine.collectives.allgather_cost`: ``ceil(log2 P)``
    messages per rank, ``(P-1)`` value-blocks moved per rank.
    """
    result = yield from _bruck_allgather_group(
        rank, list(range(size)), value, tag
    )
    return result


def allgather_grid(
    rank: int, size: int, value: Any, rows: int, cols: int, tag: int = 15
) -> GenOp:
    """Row-then-column all-gather on an ``rows x cols`` process grid.

    Phase 1 all-gathers within each row (``cols``-rank Bruck), phase 2
    exchanges the assembled row lists along each column, and the flattened
    result is in world-rank order.  Every rank sends
    ``ceil(log2 cols) + ceil(log2 rows)`` messages -- the structure the
    ``Mesh2D`` branch of :func:`repro.machine.collectives.allgather_cost`
    prices, so a counted scheduler run of this generator pins that closed
    form's whole-machine totals.
    """
    if rows * cols != size:
        raise ValueError(f"{rows}x{cols} grid does not cover {size} ranks")
    row, col = divmod(rank, cols)
    row_group = [row * cols + c for c in range(cols)]
    row_values = yield from _bruck_allgather_group(col, row_group, value, tag)
    col_group = [r * cols + col for r in range(rows)]
    row_lists = yield from _bruck_allgather_group(
        row, col_group, row_values, tag + 1
    )
    return [v for row_list in row_lists for v in row_list]


def scatter_from_root(
    rank: int,
    size: int,
    values: Optional[List[Any]],
    root: int = 0,
    tag: int = 9,
) -> GenOp:
    """Binomial-tree scatter of per-rank values held by ``root``.

    ``values`` must be a list of length ``size`` on ``root`` and is ignored
    elsewhere; each rank returns its own element.
    """
    vrank = (rank - root) % size
    if vrank == 0:
        if values is None or len(values) != size:
            raise ValueError("root must supply one value per rank")
        # keyed by virtual rank so subtree ranges are contiguous
        holding = {v: values[(v + root) % size] for v in range(size)}
        mask = 1
        while mask < size:
            mask <<= 1
        mask >>= 1
    else:
        # a rank receives exactly once, from vrank with its lowest set bit
        # cleared (mirror of the binomial gather tree)
        recv_mask = vrank & (-vrank)
        src_vrank = vrank - recv_mask
        holding = yield Recv(source=(src_vrank + root) % size, tag=tag)
        mask = recv_mask >> 1
    # forward the subtrees below us
    while mask >= 1:
        partner = vrank + mask
        if partner < size:
            subtree = {v: holding[v] for v in list(holding) if partner <= v < partner + mask}
            for v in subtree:
                del holding[v]
            yield Send(dest=(partner + root) % size, payload=subtree, tag=tag)
        mask >>= 1
    return holding[vrank]
