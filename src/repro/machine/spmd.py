"""Collective operations for SPMD rank programs, built from point-to-point.

These are generator helpers used inside rank programs with ``yield from``::

    total = yield from spmd.allreduce_sum(rank, size, local_dot)

Algorithms are the standard binomial-tree / recursive patterns (Kumar et
al. [17] in the paper), so the *measured* cost of, e.g., an allreduce in the
event simulator can be compared against the closed-form hypercube formulas
of :mod:`repro.machine.collectives` -- that comparison is benchmark E4.

All helpers work for any rank count (not just powers of two) and combine
NumPy arrays or Python scalars with ``+`` by default.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from .events import Op, Recv, Send

__all__ = [
    "bcast",
    "reduce_to_root",
    "allreduce_sum",
    "gather_to_root",
    "allgather",
    "scatter_from_root",
]

GenOp = Generator[Op, Any, Any]


def _combine_default(a: Any, b: Any) -> Any:
    return a + b


def bcast(rank: int, size: int, value: Any, root: int = 0, tag: int = 1) -> GenOp:
    """Binomial-tree broadcast; returns the broadcast value on every rank."""
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank < mask:
            partner = vrank + mask
            if partner < size:
                yield Send(dest=(partner + root) % size, payload=value, tag=tag)
        elif vrank < 2 * mask:
            value = yield Recv(source=((vrank - mask) + root) % size, tag=tag)
        mask <<= 1
    return value


def reduce_to_root(
    rank: int,
    size: int,
    value: Any,
    root: int = 0,
    op: Callable[[Any, Any], Any] = _combine_default,
    tag: int = 2,
) -> GenOp:
    """Binomial-tree reduction; ``root`` returns the combined value, others None."""
    vrank = (rank - root) % size
    mask = 1
    result = value
    while mask < size:
        if vrank & mask:
            yield Send(dest=((vrank - mask) + root) % size, payload=result, tag=tag)
            return None
        partner = vrank + mask
        if partner < size:
            other = yield Recv(source=(partner + root) % size, tag=tag)
            result = op(result, other)
        mask <<= 1
    return result if vrank == 0 else None


def allreduce_sum(
    rank: int,
    size: int,
    value: Any,
    op: Callable[[Any, Any], Any] = _combine_default,
    tag: int = 3,
) -> GenOp:
    """All-reduce: reduce to rank 0, then broadcast the result.

    Recursive doubling would halve the latency on a hypercube; the
    reduce+bcast composition is used because it is correct for any rank
    count, and its cost (2 log P stages) is what benchmark E4 checks against
    the closed-form model.
    """
    reduced = yield from reduce_to_root(rank, size, value, root=0, op=op, tag=tag)
    result = yield from bcast(rank, size, reduced, root=0, tag=tag + 1)
    return result


def gather_to_root(
    rank: int, size: int, value: Any, root: int = 0, tag: int = 5
) -> GenOp:
    """Binomial-tree gather; ``root`` returns ``[value_0, ..., value_{P-1}]``.

    Each rank accumulates a dict of contributions from its subtree and
    forwards it, so message sizes grow up the tree exactly as in the
    textbook algorithm.
    """
    vrank = (rank - root) % size
    contributions = {rank: value}
    mask = 1
    while mask < size:
        if vrank & mask:
            yield Send(
                dest=((vrank - mask) + root) % size, payload=contributions, tag=tag
            )
            return None
        partner = vrank + mask
        if partner < size:
            sub = yield Recv(source=(partner + root) % size, tag=tag)
            contributions.update(sub)
        mask <<= 1
    if vrank == 0:
        return [contributions[r] for r in range(size)]
    return None


def allgather(rank: int, size: int, value: Any, tag: int = 7) -> GenOp:
    """All-to-all broadcast: every rank returns the full list of values.

    Gather to rank 0 then broadcast the list -- the "tree-like broadcasting
    mechanism" the paper assumes for replicating the vector ``p`` in
    Scenario 1.
    """
    gathered = yield from gather_to_root(rank, size, value, root=0, tag=tag)
    result = yield from bcast(rank, size, gathered, root=0, tag=tag + 1)
    return result


def scatter_from_root(
    rank: int,
    size: int,
    values: Optional[List[Any]],
    root: int = 0,
    tag: int = 9,
) -> GenOp:
    """Binomial-tree scatter of per-rank values held by ``root``.

    ``values`` must be a list of length ``size`` on ``root`` and is ignored
    elsewhere; each rank returns its own element.
    """
    vrank = (rank - root) % size
    if vrank == 0:
        if values is None or len(values) != size:
            raise ValueError("root must supply one value per rank")
        # keyed by virtual rank so subtree ranges are contiguous
        holding = {v: values[(v + root) % size] for v in range(size)}
        mask = 1
        while mask < size:
            mask <<= 1
        mask >>= 1
    else:
        # a rank receives exactly once, from vrank with its lowest set bit
        # cleared (mirror of the binomial gather tree)
        recv_mask = vrank & (-vrank)
        src_vrank = vrank - recv_mask
        holding = yield Recv(source=(src_vrank + root) % size, tag=tag)
        mask = recv_mask >> 1
    # forward the subtrees below us
    while mask >= 1:
        partner = vrank + mask
        if partner < size:
            subtree = {v: holding[v] for v in list(holding) if partner <= v < partner + mask}
            for v in subtree:
                del holding[v]
            yield Send(dest=(partner + root) % size, payload=subtree, tag=tag)
        mask >>= 1
    return holding[vrank]
