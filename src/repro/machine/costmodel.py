"""Communication and computation cost model for the simulated multicomputer.

The paper (Dincer et al., SCCS-703) expresses every communication cost in
terms of a *start-up time* ``t_startup`` charged once per message and a
*per-word transfer time* ``t_comm`` (e.g. the all-to-all broadcast of
Scenario 1 costs ``t_startup * log N_P + t_comm * n / N_P``).  Computation is
charged per floating-point operation.  :class:`CostModel` bundles those
parameters; every simulated operation in :mod:`repro.machine` is priced
through it so that a single object controls the whole machine model.

Times are in seconds but the absolute scale is irrelevant to the paper's
claims -- only ratios (who wins, how costs scale with ``n`` and ``N_P``)
matter.  Defaults approximate a mid-1990s multicomputer (high message
latency relative to flop rate), which is the regime in which the paper's
trade-offs are visible.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Machine cost parameters.

    Parameters
    ----------
    t_startup:
        Fixed cost charged once per point-to-point message (seconds).  The
        paper calls this ``t_start_up``.
    t_comm:
        Transfer cost per *word* (seconds).  The paper's ``t_comm`` is "the
        transfer time per byte"; we price per 8-byte word for convenience and
        scale accordingly.
    t_flop:
        Cost of one floating-point operation (seconds).
    t_hop:
        Extra per-hop latency for multi-hop routes (cut-through routing).
        Zero by default, matching the paper's hop-free formulas.
    word_bytes:
        Size of one word in bytes (informational; stats report words).
    """

    t_startup: float = 5.0e-5
    t_comm: float = 1.0e-8
    t_flop: float = 1.0e-9
    t_hop: float = 0.0
    word_bytes: int = 8

    def __post_init__(self) -> None:
        for field in ("t_startup", "t_comm", "t_flop", "t_hop"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")
        if self.word_bytes <= 0:
            raise ValueError("word_bytes must be positive")

    def message_time(self, nwords: float, hops: int = 1) -> float:
        """Time to move one message of ``nwords`` words over ``hops`` links."""
        if nwords < 0:
            raise ValueError("nwords must be non-negative")
        if hops < 1:
            raise ValueError("hops must be at least 1")
        return self.t_startup + self.t_hop * (hops - 1) + self.t_comm * nwords

    def compute_time(self, flops: float) -> float:
        """Time to execute ``flops`` floating point operations on one rank."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return self.t_flop * flops

    def with_(self, **kwargs: float) -> "CostModel":
        """Return a copy with some parameters replaced."""
        current = {
            "t_startup": self.t_startup,
            "t_comm": self.t_comm,
            "t_flop": self.t_flop,
            "t_hop": self.t_hop,
            "word_bytes": self.word_bytes,
        }
        current.update(kwargs)
        return CostModel(**current)
