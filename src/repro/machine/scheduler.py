"""Deterministic discrete-event scheduler for SPMD rank programs.

Rank programs are Python generators yielding :class:`~repro.machine.events`
operations.  The scheduler interleaves them deterministically (rank order),
matches sends with receives, advances the shared
:class:`~repro.machine.machine.Machine` clocks, and detects deadlock.

Sends are *eager* (buffered): the sender posts the message and continues,
as MPI implementations do for small messages; the transfer is priced when
the matching receive is posted, completing at
``max(sender_post_time, receiver_ready_time) + message_time``.  Receives
and barriers block.

The point of simulating message passing at this level -- instead of only
charging closed-form collective costs -- is cross-validation: benchmark E4
shows that collective times *emerging* from point-to-point messages agree
with the closed-form formulas the paper uses, and the message-passing CG
baseline (E15) is an honest re-creation of the "explicit message-passing
program" of the paper's Section 5.1.

Fault injection
---------------
An optional :class:`~repro.machine.faults.FaultPlan` makes the simulated
network and processors unreliable: posted sends can be dropped, duplicated,
corrupted or delayed, and ranks can suffer scheduled fail-stop crashes
(their generator is closed, messages to them are lost, and the run raises
:class:`~repro.machine.faults.RankFailedError` once the survivors cannot
proceed).  ``Recv(timeout=...)`` lets programs bound their wait: when the
scheduler would otherwise stall, the earliest-deadline blocked receive has
its rank's clock advanced to the deadline and
:class:`~repro.machine.faults.RecvTimeoutError` raised inside its program.
Timeouts are *conservative* -- they fire only when no other progress is
possible -- so fault-free programs never expire spuriously, yet a lost
message (whose absence stalls the whole machine) is detected at exactly
the receiver's virtual deadline.  With ``faults=None`` (the default) every
code path below behaves exactly as the fault-free scheduler always has.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from .events import ANY_SOURCE, Barrier, Checkpoint, Compute, Op, Recv, Send
from .faults import DELAY, DELIVER, DROP, DUPLICATE, CORRUPT, FaultPlan
from .faults import RankFailedError, RecvTimeoutError, StragglerDetectedError
from .machine import Machine

__all__ = ["Scheduler", "DeadlockError", "run_spmd"]

RankProgram = Generator[Op, Any, Any]
ProgramFactory = Callable[[int, int], RankProgram]


class DeadlockError(RuntimeError):
    """All live ranks are blocked and no message can be matched."""


class _State(enum.Enum):
    READY = "ready"
    BLOCKED_RECV = "blocked_recv"
    AT_BARRIER = "at_barrier"
    DONE = "done"
    CRASHED = "crashed"


_FINISHED = (_State.DONE, _State.CRASHED)


class Scheduler:
    """Runs one SPMD program instance per machine rank to completion."""

    def __init__(
        self,
        machine: Machine,
        tag: Optional[str] = None,
        faults: Optional[FaultPlan] = None,
        checkpoint_store: Optional[Dict[int, Dict[int, Any]]] = None,
        straggler_deadline: Optional[float] = None,
    ):
        self.machine = machine
        self.tag = tag
        # an inert plan is equivalent to no plan; normalising here keeps the
        # fault checks off the hot path for every fault-free run
        self.faults = faults if (faults is not None and faults.enabled) else None
        # straggler detection: once a live rank's clock runs this many
        # virtual seconds past the slowest live peer's, the run aborts with
        # StragglerDetectedError so the recovery driver can shrink/rebalance
        if straggler_deadline is not None and straggler_deadline <= 0:
            raise ValueError("straggler_deadline must be positive")
        self.straggler_deadline = straggler_deadline
        # Checkpoint ops write here: {iteration: {rank: payload}}.  The store
        # is caller-owned so it survives the failed run it was taken during --
        # the recovery driver restarts from the newest complete entry.
        self.checkpoint_store = checkpoint_store if checkpoint_store is not None else {}
        self._gens: List[Optional[RankProgram]] = []
        self._state: List[_State] = []
        self._resume_value: List[Any] = []
        self._blocked_op: List[Optional[Op]] = []
        self._recv_deadline: List[Optional[float]] = []
        self._results: List[Any] = []
        # pending sends keyed by (dest, tag) -> deque of (src, post_time, Send)
        self._pending: Dict[Tuple[int, int], Deque[Tuple[int, float, Send]]] = {}

    # ------------------------------------------------------------------ #
    def run(self, program: ProgramFactory) -> List[Any]:
        """Instantiate ``program(rank, nprocs)`` per rank and run to completion.

        Returns the per-rank generator return values.  Raises
        :class:`~repro.machine.faults.RankFailedError` if any rank crashed,
        since the run's results are then incomplete.
        """
        n = self.machine.nprocs
        self._gens = [program(rank, n) for rank in range(n)]
        self._state = [_State.READY] * n
        self._resume_value = [None] * n
        self._blocked_op = [None] * n
        self._recv_deadline = [None] * n
        self._results = [None] * n
        self._pending.clear()

        while not all(s in _FINISHED for s in self._state):
            progressed = False
            for rank in range(n):
                if self._state[rank] is _State.READY:
                    self._advance(rank)
                    progressed = True
            progressed |= self._release_barrier()
            if not progressed:
                progressed = self._fire_fault_event()
            if not progressed:
                self._raise_stalled()
        crashed = [r for r in range(n) if self._state[r] is _State.CRASHED]
        if crashed:
            raise RankFailedError(
                f"rank(s) {crashed} failed during the run; results incomplete",
                rank=crashed[0],
            )
        return list(self._results)

    # ------------------------------------------------------------------ #
    def _advance(self, rank: int, throw: Optional[BaseException] = None) -> None:
        """Resume one rank's generator until it blocks or finishes.

        ``throw`` raises an exception (a receive timeout) inside the
        generator instead of sending a resume value.
        """
        gen = self._gens[rank]
        assert gen is not None
        while True:
            if self.faults is not None and self.faults.crash_due(
                rank, float(self.machine.clock[rank])
            ):
                self._crash(rank)
                return
            try:
                if throw is not None:
                    exc, throw = throw, None
                    op = gen.throw(exc)
                else:
                    op = gen.send(self._resume_value[rank])
            except StopIteration as stop:
                self._state[rank] = _State.DONE
                self._results[rank] = stop.value
                self._gens[rank] = None
                return
            self._resume_value[rank] = None
            if isinstance(op, Compute):
                flops = op.flops
                if self.faults is not None:
                    # a slow processor takes `factor` times longer for the
                    # same arithmetic: charge dilated virtual time
                    factor = self.faults.slowdown_factor(
                        rank, float(self.machine.clock[rank])
                    )
                    if factor > 1.0:
                        flops = flops * factor
                self.machine.charge_compute(rank, flops)
                self._check_straggler(rank)
                continue
            if isinstance(op, Send):
                self._post_send(rank, op)
                continue  # eager: sender never blocks
            if isinstance(op, Recv):
                if op.source != ANY_SOURCE and not 0 <= op.source < self.machine.nprocs:
                    raise ValueError(
                        f"rank {rank} posted a receive from invalid rank "
                        f"{op.source} (nprocs={self.machine.nprocs})"
                    )
                if self._try_match_recv(rank, op):
                    continue  # resume_value already holds the payload
                self._state[rank] = _State.BLOCKED_RECV
                self._blocked_op[rank] = op
                if op.timeout is not None:
                    self._recv_deadline[rank] = (
                        float(self.machine.clock[rank]) + op.timeout
                    )
                return
            if isinstance(op, Checkpoint):
                self.checkpoint_store.setdefault(op.iteration, {})[rank] = op.payload
                continue  # free at this layer; programs charge the copy cost
            if isinstance(op, Barrier):
                self._state[rank] = _State.AT_BARRIER
                self._blocked_op[rank] = op
                return
            raise TypeError(f"rank {rank} yielded a non-Op value: {op!r}")

    # ------------------------------------------------------------------ #
    # fault machinery
    # ------------------------------------------------------------------ #
    def _crash(self, rank: int) -> None:
        """Fail-stop ``rank``: close its program and void traffic to it."""
        assert self.faults is not None
        t = self.faults.fire_crash(rank)
        self.machine.clock[rank] = max(float(self.machine.clock[rank]), t)
        gen = self._gens[rank]
        if gen is not None:
            gen.close()
        self._gens[rank] = None
        self._state[rank] = _State.CRASHED
        self._blocked_op[rank] = None
        self._recv_deadline[rank] = None
        self._results[rank] = None
        # undelivered messages to the dead rank are lost with it; messages it
        # already posted stay in flight (they left its network interface)
        for key in [k for k in self._pending if k[0] == rank]:
            self.faults.stats.lost_to_dead_rank += len(self._pending[key])
            del self._pending[key]
        if self.machine.tracer is not None:
            now = float(self.machine.clock[rank])
            self.machine.tracer.record(rank, "crash", now, now, "fail-stop")

    def _check_straggler(self, rank: int) -> None:
        """Abort the run when ``rank`` has fallen too far behind its peers.

        The straggler's virtual clock races ahead of the live peers who sit
        blocked at the next synchronisation point, so lag is measured as
        this rank's clock minus the slowest live peer's.  Detection models
        a supervisor watching per-rank progress reports: it fires only with
        a deadline configured, and never on a fault-free machine because
        rank skew there stays within one message latency.
        """
        if self.straggler_deadline is None:
            return
        peers = [
            float(self.machine.clock[r])
            for r in range(self.machine.nprocs)
            if r != rank and self._state[r] not in _FINISHED
        ]
        if not peers:
            return
        lag = float(self.machine.clock[rank]) - min(peers)
        if lag > self.straggler_deadline:
            slow = self.faults.slowdown_for(rank) if self.faults else None
            raise StragglerDetectedError(
                rank=rank,
                lag=lag,
                factor=slow.factor if slow is not None else None,
            )

    def _fire_fault_event(self) -> bool:
        """On a global stall, fire the earliest pending timeout or crash.

        Ranks blocked in a receive or barrier stop advancing their own
        clocks, so receive deadlines and scheduled crashes on them can only
        take effect once the machine has no other way to make progress.
        The earliest virtual event (deadline for timeouts; the later of the
        rank's clock and the scheduled time for crashes) fires first, which
        keeps cause and effect ordered -- a retransmission timeout due
        before a crash resolves the stall without killing the rank early.
        """
        # (event_time, kind_priority, rank, is_crash); timeouts win ties so a
        # retry gets its chance before a simultaneous failure
        events: List[Tuple[float, int, int, bool]] = []
        for r in range(self.machine.nprocs):
            if self._state[r] is _State.BLOCKED_RECV and (
                self._recv_deadline[r] is not None
            ):
                events.append((self._recv_deadline[r], 0, r, False))
            if (
                self.faults is not None
                and self._state[r] not in _FINISHED
                and self.faults.has_scheduled_crash(r)
            ):
                due = max(
                    float(self.machine.clock[r]),
                    self.faults.scheduled_crash_time(r),
                )
                events.append((due, 1, r, True))
        if not events:
            return False
        when, _, rank, is_crash = min(events)
        if is_crash:
            self._crash(rank)
            return True
        self.machine.clock[rank] = max(float(self.machine.clock[rank]), when)
        op = self._blocked_op[rank]
        self._state[rank] = _State.READY
        self._blocked_op[rank] = None
        self._recv_deadline[rank] = None
        assert isinstance(op, Recv)
        self._advance(
            rank,
            throw=RecvTimeoutError(
                rank=rank,
                peer=None if op.source == ANY_SOURCE else op.source,
                tag=op.tag,
                elapsed=op.timeout,
            ),
        )
        return True

    def _raise_stalled(self) -> None:
        """No rank can progress: diagnose a crash-induced failure or deadlock."""
        n = self.machine.nprocs
        crashed = [r for r in range(n) if self._state[r] is _State.CRASHED]
        blocked = {
            r: (self._state[r].value, self._blocked_op[r])
            for r in range(n)
            if self._state[r] not in _FINISHED
        }
        pending = self._pending_summary()
        if crashed:
            raise RankFailedError(
                f"rank(s) {crashed} failed and the survivors cannot proceed; "
                f"blocked ranks: {blocked}; pending unmatched sends: {pending}",
                rank=crashed[0],
            )
        raise DeadlockError(
            f"SPMD deadlock; blocked ranks: {blocked}; "
            f"pending unmatched sends: {pending}"
        )

    def _pending_summary(self) -> str:
        """Human-readable list of buffered sends no receive has matched."""
        items = [
            f"{src} -> {dst} (tag={tag}, words={send.words():g})"
            for (dst, tag), queue in sorted(self._pending.items())
            for (src, _, send) in queue
        ]
        return "[" + ", ".join(items) + "]" if items else "none"

    # ------------------------------------------------------------------ #
    def _post_send(self, src: int, op: Send) -> None:
        """Buffer an eager send; deliver at once to a waiting receiver.

        With fault injection active, the message may instead be dropped,
        duplicated, corrupted or delayed here -- the moment it enters the
        simulated network.
        """
        dst = op.dest
        if not 0 <= dst < self.machine.nprocs:
            raise ValueError(f"rank {src} sent to invalid rank {dst}")
        post_time = float(self.machine.clock[src])
        if self.faults is not None and src != dst:
            if self._state[dst] is _State.CRASHED:
                # the wire carried the message; nobody is there to take it
                self.faults.stats.lost_to_dead_rank += 1
                self._record_lost(src, dst, op)
                return
            # control traffic (acks) rides the flow-controlled channel and
            # is exempt from injected faults; see events.Send.control
            action = DELIVER if op.control else self.faults.next_action(
                src, dst, op.tag
            )
            if action == DROP:
                self._record_lost(src, dst, op)
                return
            if action == CORRUPT:
                op = dataclasses.replace(
                    op, payload=self.faults.corrupt_payload(op.payload)
                )
            elif action == DELAY:
                post_time += self.faults.delay_for()
            queue = self._pending.setdefault((dst, op.tag), deque())
            queue.append((src, post_time, op))
            if action == DUPLICATE:
                queue.append((src, post_time, op))
        else:
            self._pending.setdefault((dst, op.tag), deque()).append(
                (src, post_time, op)
            )
        # a receiver already blocked on this message completes immediately
        if self._state[dst] is _State.BLOCKED_RECV:
            recv = self._blocked_op[dst]
            assert isinstance(recv, Recv)
            if self._try_match_recv(dst, recv):
                self._state[dst] = _State.READY
                self._blocked_op[dst] = None
                self._recv_deadline[dst] = None

    def _record_lost(self, src: int, dst: int, op: Send) -> None:
        """Charge a lost message's wire traffic without advancing clocks."""
        nwords = op.words()
        hops = max(1, self.machine.topology.hops(src, dst))
        t = self.machine.cost.message_time(nwords, hops)
        self.machine.stats.record_comm("p2p-dropped", 1, nwords, t, self.tag)

    def _complete_transfer(
        self, src: int, post_time: float, dst: int, send: Send
    ) -> None:
        """Price a matched message and advance the receiver's clock."""
        machine = self.machine
        nwords = send.words()
        hops = max(1, machine.topology.hops(src, dst)) if src != dst else 1
        t = machine.cost.message_time(nwords, hops)
        if src == dst:
            return  # self-message: no network traffic
        completion = max(post_time, float(machine.clock[dst])) + t
        machine.clock[dst] = completion
        machine.stats.record_comm("p2p", 1, nwords, t, self.tag)

    def _try_match_recv(self, dst: int, op: Recv) -> bool:
        """If a matching send is pending for ``dst``, complete it."""
        queue = self._pending.get((dst, op.tag))
        if not queue:
            return False
        if op.source == ANY_SOURCE:
            src, post_time, send = queue.popleft()
        else:
            found = None
            for i, (src_i, _, _) in enumerate(queue):
                if src_i == op.source:
                    found = i
                    break
            if found is None:
                return False
            src, post_time, send = queue[found]
            del queue[found]
        if not queue:
            del self._pending[(dst, op.tag)]
        self._complete_transfer(src, post_time, dst, send)
        self._resume_value[dst] = send.payload
        return True

    def _release_barrier(self) -> bool:
        """Release the barrier when every live rank has reached it."""
        live = [
            r
            for r in range(self.machine.nprocs)
            if self._state[r] not in _FINISHED
        ]
        if not live:
            return False
        if not all(self._state[r] is _State.AT_BARRIER for r in live):
            return False
        crashed = [
            r for r in range(self.machine.nprocs) if self._state[r] is _State.CRASHED
        ]
        if crashed:
            raise RankFailedError(
                f"barrier cannot complete: rank(s) {crashed} failed; "
                f"waiting ranks: {live}",
                rank=crashed[0],
            )
        if len(live) != self.machine.nprocs:
            raise DeadlockError(
                "barrier reached while some ranks already terminated: "
                f"live={live}"
            )
        self.machine.barrier(tag=self.tag)
        for r in live:
            self._state[r] = _State.READY
            self._blocked_op[r] = None
        return True


def run_spmd(
    machine: Machine,
    program: ProgramFactory,
    tag: Optional[str] = None,
    faults: Optional[FaultPlan] = None,
    checkpoint_store: Optional[Dict[int, Dict[int, Any]]] = None,
) -> List[Any]:
    """Convenience wrapper: run ``program`` on ``machine`` and return results."""
    return Scheduler(
        machine, tag=tag, faults=faults, checkpoint_store=checkpoint_store
    ).run(program)
