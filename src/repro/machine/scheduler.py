"""Deterministic discrete-event scheduler for SPMD rank programs.

Rank programs are Python generators yielding :class:`~repro.machine.events`
operations.  The scheduler interleaves them deterministically (rank order),
matches sends with receives, advances the shared
:class:`~repro.machine.machine.Machine` clocks, and detects deadlock.

Sends are *eager* (buffered): the sender posts the message and continues,
as MPI implementations do for small messages; the transfer is priced when
the matching receive is posted, completing at
``max(sender_post_time, receiver_ready_time) + message_time``.  Receives
and barriers block.

The point of simulating message passing at this level -- instead of only
charging closed-form collective costs -- is cross-validation: benchmark E4
shows that collective times *emerging* from point-to-point messages agree
with the closed-form formulas the paper uses, and the message-passing CG
baseline (E15) is an honest re-creation of the "explicit message-passing
program" of the paper's Section 5.1.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from .events import ANY_SOURCE, Barrier, Compute, Op, Recv, Send
from .machine import Machine

__all__ = ["Scheduler", "DeadlockError", "run_spmd"]

RankProgram = Generator[Op, Any, Any]
ProgramFactory = Callable[[int, int], RankProgram]


class DeadlockError(RuntimeError):
    """All live ranks are blocked and no message can be matched."""


class _State(enum.Enum):
    READY = "ready"
    BLOCKED_RECV = "blocked_recv"
    AT_BARRIER = "at_barrier"
    DONE = "done"


class Scheduler:
    """Runs one SPMD program instance per machine rank to completion."""

    def __init__(self, machine: Machine, tag: Optional[str] = None):
        self.machine = machine
        self.tag = tag
        self._gens: List[Optional[RankProgram]] = []
        self._state: List[_State] = []
        self._resume_value: List[Any] = []
        self._blocked_op: List[Optional[Op]] = []
        self._results: List[Any] = []
        # pending sends keyed by (dest, tag) -> deque of (src, post_time, Send)
        self._pending: Dict[Tuple[int, int], Deque[Tuple[int, float, Send]]] = {}

    # ------------------------------------------------------------------ #
    def run(self, program: ProgramFactory) -> List[Any]:
        """Instantiate ``program(rank, nprocs)`` per rank and run to completion.

        Returns the per-rank generator return values.
        """
        n = self.machine.nprocs
        self._gens = [program(rank, n) for rank in range(n)]
        self._state = [_State.READY] * n
        self._resume_value = [None] * n
        self._blocked_op = [None] * n
        self._results = [None] * n
        self._pending.clear()

        while not all(s is _State.DONE for s in self._state):
            progressed = False
            for rank in range(n):
                if self._state[rank] is _State.READY:
                    self._advance(rank)
                    progressed = True
            progressed |= self._release_barrier()
            if not progressed:
                blocked = {
                    r: (self._state[r].value, self._blocked_op[r])
                    for r in range(n)
                    if self._state[r] is not _State.DONE
                }
                raise DeadlockError(f"SPMD deadlock; blocked ranks: {blocked}")
        return list(self._results)

    # ------------------------------------------------------------------ #
    def _advance(self, rank: int) -> None:
        """Resume one rank's generator until it blocks or finishes."""
        gen = self._gens[rank]
        assert gen is not None
        while True:
            try:
                op = gen.send(self._resume_value[rank])
            except StopIteration as stop:
                self._state[rank] = _State.DONE
                self._results[rank] = stop.value
                self._gens[rank] = None
                return
            self._resume_value[rank] = None
            if isinstance(op, Compute):
                self.machine.charge_compute(rank, op.flops)
                continue
            if isinstance(op, Send):
                self._post_send(rank, op)
                continue  # eager: sender never blocks
            if isinstance(op, Recv):
                if self._try_match_recv(rank, op):
                    continue  # resume_value already holds the payload
                self._state[rank] = _State.BLOCKED_RECV
                self._blocked_op[rank] = op
                return
            if isinstance(op, Barrier):
                self._state[rank] = _State.AT_BARRIER
                self._blocked_op[rank] = op
                return
            raise TypeError(f"rank {rank} yielded a non-Op value: {op!r}")

    # ------------------------------------------------------------------ #
    def _post_send(self, src: int, op: Send) -> None:
        """Buffer an eager send; deliver at once to a waiting receiver."""
        dst = op.dest
        if not 0 <= dst < self.machine.nprocs:
            raise ValueError(f"rank {src} sent to invalid rank {dst}")
        post_time = float(self.machine.clock[src])
        self._pending.setdefault((dst, op.tag), deque()).append(
            (src, post_time, op)
        )
        # a receiver already blocked on this message completes immediately
        if self._state[dst] is _State.BLOCKED_RECV:
            recv = self._blocked_op[dst]
            assert isinstance(recv, Recv)
            if self._try_match_recv(dst, recv):
                self._state[dst] = _State.READY
                self._blocked_op[dst] = None

    def _complete_transfer(
        self, src: int, post_time: float, dst: int, send: Send
    ) -> None:
        """Price a matched message and advance the receiver's clock."""
        machine = self.machine
        nwords = send.words()
        hops = max(1, machine.topology.hops(src, dst)) if src != dst else 1
        t = machine.cost.message_time(nwords, hops)
        if src == dst:
            return  # self-message: no network traffic
        completion = max(post_time, float(machine.clock[dst])) + t
        machine.clock[dst] = completion
        machine.stats.record_comm("p2p", 1, nwords, t, self.tag)

    def _try_match_recv(self, dst: int, op: Recv) -> bool:
        """If a matching send is pending for ``dst``, complete it."""
        queue = self._pending.get((dst, op.tag))
        if not queue:
            return False
        if op.source == ANY_SOURCE:
            src, post_time, send = queue.popleft()
        else:
            found = None
            for i, (src_i, _, _) in enumerate(queue):
                if src_i == op.source:
                    found = i
                    break
            if found is None:
                return False
            src, post_time, send = queue[found]
            del queue[found]
        if not queue:
            del self._pending[(dst, op.tag)]
        self._complete_transfer(src, post_time, dst, send)
        self._resume_value[dst] = send.payload
        return True

    def _release_barrier(self) -> bool:
        """Release the barrier when every live rank has reached it."""
        live = [
            r for r in range(self.machine.nprocs) if self._state[r] is not _State.DONE
        ]
        if not live:
            return False
        if not all(self._state[r] is _State.AT_BARRIER for r in live):
            return False
        if len(live) != self.machine.nprocs:
            raise DeadlockError(
                "barrier reached while some ranks already terminated: "
                f"live={live}"
            )
        self.machine.barrier(tag=self.tag)
        for r in live:
            self._state[r] = _State.READY
            self._blocked_op[r] = None
        return True


def run_spmd(
    machine: Machine, program: ProgramFactory, tag: Optional[str] = None
) -> List[Any]:
    """Convenience wrapper: run ``program`` on ``machine`` and return results."""
    return Scheduler(machine, tag=tag).run(program)
