r"""Communication operations for SPMD rank programs.

An SPMD program is a Python generator (one instance per rank) that ``yield``\ s
these operations to the :class:`~repro.machine.scheduler.Scheduler`:

* ``payload = yield Recv(source)`` -- blocking receive (optionally with a
  ``timeout`` after which the scheduler raises
  :class:`~repro.machine.faults.RecvTimeoutError` inside the program),
* ``yield Send(dest, payload)`` -- eager buffered send (the sender posts
  the message and continues; the transfer is priced when the matching
  receive completes),
* ``yield Compute(flops)`` -- advance the local clock,
* ``yield Barrier()`` -- global synchronisation.

This is the "explicit message-passing SPMD model" the paper contrasts HPF
against; the baselines in :mod:`repro.baselines.message_passing` are written
in this style and executed deterministically by the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

__all__ = ["Op", "Send", "Recv", "Compute", "Barrier", "Checkpoint",
           "payload_words"]

ANY_SOURCE = -1


def payload_words(payload: Any) -> float:
    """Estimate message size in words for a Python payload.

    NumPy arrays count their elements; scalars count 1; tuples/lists sum
    their parts; ``None`` is a zero-word control message.
    """
    if payload is None:
        return 0.0
    if isinstance(payload, np.ndarray):
        return float(payload.size)
    if isinstance(payload, (int, float, complex, np.generic, bool)):
        return 1.0
    if isinstance(payload, (tuple, list)):
        return float(sum(payload_words(p) for p in payload))
    if isinstance(payload, dict):
        return float(sum(payload_words(v) for v in payload.values()))
    return 1.0


class Op:
    """Base class for operations yielded by SPMD rank programs."""


@dataclass
class Send(Op):
    """Eager (buffered) send of ``payload`` to rank ``dest``.

    The sender never blocks: the scheduler buffers the message and the
    transfer is priced when the matching receive is posted, as MPI
    implementations do for small messages.  ``nwords`` overrides the
    automatic payload size estimate when the Python object does not reflect
    the modelled wire size.

    ``control`` marks protocol control traffic (acknowledgements of the
    reliable-messaging layer): it is priced like any other message but is
    exempt from fault injection, modelling the hardware-flow-controlled
    control channel of the simulated network.  Without this exemption a
    lost ack whose receiver has already moved on would strand the sender
    in a retry loop no progress engine exists to break.
    """

    dest: int
    payload: Any = None
    tag: int = 0
    nwords: Optional[float] = None
    control: bool = False

    def words(self) -> float:
        return self.nwords if self.nwords is not None else payload_words(self.payload)


@dataclass
class Recv(Op):
    """Blocking receive from rank ``source`` (``ANY_SOURCE`` matches any).

    ``timeout`` (simulated seconds) bounds the wait: if no matching send
    can arrive, the scheduler advances this rank's clock to the deadline
    and raises :class:`~repro.machine.faults.RecvTimeoutError` inside the
    program instead of diagnosing a deadlock.  Timeouts are conservative:
    a receive only expires once the scheduler has no other way to make
    progress, so a fault-free program never times out spuriously.
    """

    source: int = ANY_SOURCE
    tag: int = 0
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")


@dataclass
class Compute(Op):
    """Local computation of ``flops`` floating-point operations."""

    flops: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError("flops must be non-negative")


@dataclass
class Barrier(Op):
    """Global barrier across all ranks."""

    label: str = ""


@dataclass
class Checkpoint(Op):
    """Publish this rank's recovery snapshot for iteration ``iteration``.

    The payload is handed to whatever stable storage the executing
    substrate provides: the simulated scheduler writes it into its
    caller-supplied checkpoint store, the process backend ships it to the
    supervising parent over the report queue.  Either way a later run can
    be restarted from the newest checkpoint *every* rank completed (see
    :func:`repro.core.resilience.latest_complete_checkpoint`).

    Publishing is free at this layer by design -- programs account for
    the copy cost themselves with an adjacent :class:`Compute`, exactly
    like the in-program checkpointing of the resilient SPMD solvers, so
    both substrates charge identically.
    """

    iteration: int = 0
    payload: Any = None

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError("checkpoint iteration must be non-negative")
