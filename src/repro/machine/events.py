r"""Communication operations for SPMD rank programs.

An SPMD program is a Python generator (one instance per rank) that ``yield``\ s
these operations to the :class:`~repro.machine.scheduler.Scheduler`:

* ``payload = yield Recv(source)`` -- blocking receive,
* ``yield Send(dest, payload)`` -- blocking (rendezvous) send,
* ``yield Compute(flops)`` -- advance the local clock,
* ``yield Barrier()`` -- global synchronisation.

This is the "explicit message-passing SPMD model" the paper contrasts HPF
against; the baselines in :mod:`repro.baselines.message_passing` are written
in this style and executed deterministically by the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = ["Op", "Send", "Recv", "Compute", "Barrier", "payload_words"]

ANY_SOURCE = -1


def payload_words(payload: Any) -> float:
    """Estimate message size in words for a Python payload.

    NumPy arrays count their elements; scalars count 1; tuples/lists sum
    their parts; ``None`` is a zero-word control message.
    """
    if payload is None:
        return 0.0
    if isinstance(payload, np.ndarray):
        return float(payload.size)
    if isinstance(payload, (int, float, complex, np.generic, bool)):
        return 1.0
    if isinstance(payload, (tuple, list)):
        return float(sum(payload_words(p) for p in payload))
    if isinstance(payload, dict):
        return float(sum(payload_words(v) for v in payload.values()))
    return 1.0


class Op:
    """Base class for operations yielded by SPMD rank programs."""


@dataclass
class Send(Op):
    """Blocking (rendezvous) send of ``payload`` to rank ``dest``.

    ``nwords`` overrides the automatic payload size estimate when the Python
    object does not reflect the modelled wire size.
    """

    dest: int
    payload: Any = None
    tag: int = 0
    nwords: Optional[float] = None

    def words(self) -> float:
        return self.nwords if self.nwords is not None else payload_words(self.payload)


@dataclass
class Recv(Op):
    """Blocking receive from rank ``source`` (``ANY_SOURCE`` matches any)."""

    source: int = ANY_SOURCE
    tag: int = 0


@dataclass
class Compute(Op):
    """Local computation of ``flops`` floating-point operations."""

    flops: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError("flops must be non-negative")


@dataclass
class Barrier(Op):
    """Global barrier across all ranks."""

    label: str = ""


@dataclass
class _PendingSend:
    """Internal scheduler bookkeeping for a posted send."""

    src: int
    op: Send
    post_time: float
    seq: int = field(default=0)
