"""Simulated distributed-memory multicomputer.

This package stands in for the 1990s HPCC platform the paper targets: a
collection of processors with private memories connected by a hypercube (or
ring / mesh / complete) network, with communication priced as
``t_startup + nwords * t_comm`` per message.

Public surface:

* :class:`Machine` -- per-rank clocks, flop charging and collective ops;
* :class:`CostModel` -- the ``t_startup`` / ``t_comm`` / ``t_flop`` triple;
* topologies (:class:`Hypercube`, :class:`Ring`, :class:`Mesh2D`,
  :class:`Complete`);
* the SPMD layer: :class:`Scheduler`, :func:`run_spmd` and the
  :mod:`~repro.machine.events` operations plus :mod:`~repro.machine.spmd`
  collectives for explicit message-passing programs.
"""

from .collectives import (
    CollectiveCost,
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    barrier_cost,
    broadcast_cost,
    gather_cost,
    reduce_cost,
    reduce_scatter_cost,
    scatter_cost,
)
from .costmodel import CostModel
from .events import (ANY_SOURCE, Barrier, Checkpoint, Compute, Op, Recv,
                     Send, payload_words)
from .faults import (
    FaultPlan,
    FaultRule,
    FaultStats,
    RankCrash,
    RankFailedError,
    RankSlowdown,
    RecvTimeoutError,
    StateCorruption,
    StragglerDetectedError,
)
from .machine import Machine
from .reliable import ReliableConfig, ReliableEndpoint
from .scheduler import DeadlockError, Scheduler, run_spmd
from .stats import CommRecord, MachineStats, StatsDelta
from .trace import TraceEvent, Tracer
from .topology import Complete, Hypercube, Mesh2D, Ring, Topology, ceil_log2, make_topology

__all__ = [
    "Machine",
    "CostModel",
    "Topology",
    "Hypercube",
    "Ring",
    "Mesh2D",
    "Complete",
    "make_topology",
    "ceil_log2",
    "CollectiveCost",
    "broadcast_cost",
    "reduce_cost",
    "allreduce_cost",
    "allgather_cost",
    "reduce_scatter_cost",
    "gather_cost",
    "scatter_cost",
    "alltoall_cost",
    "barrier_cost",
    "CommRecord",
    "MachineStats",
    "StatsDelta",
    "Op",
    "Send",
    "Recv",
    "Compute",
    "Barrier",
    "Checkpoint",
    "ANY_SOURCE",
    "payload_words",
    "Scheduler",
    "DeadlockError",
    "run_spmd",
    "FaultPlan",
    "FaultRule",
    "FaultStats",
    "RankCrash",
    "RankFailedError",
    "RankSlowdown",
    "RecvTimeoutError",
    "StateCorruption",
    "StragglerDetectedError",
    "ReliableConfig",
    "ReliableEndpoint",
    "Tracer",
    "TraceEvent",
]
