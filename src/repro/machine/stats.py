"""Accounting of communication and computation on the simulated machine.

Every priced operation on a :class:`~repro.machine.machine.Machine` appends a
:class:`CommRecord` (for communication) or updates per-rank flop counters
(for computation).  Benchmarks read these to report message counts, word
volumes, time decompositions and per-rank load balance -- the quantities the
paper reasons about analytically.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["CommRecord", "MachineStats", "StatsDelta"]


@dataclass(frozen=True)
class CommRecord:
    """One communication operation.

    Attributes
    ----------
    op:
        Operation kind (``"broadcast"``, ``"allreduce"``, ``"p2p"``, ...).
    messages:
        Number of point-to-point messages the operation required.
    words:
        Total words moved over the network (sum across all messages).
    time:
        Modelled elapsed time of the operation (seconds).
    tag:
        Optional free-form label so callers can attribute traffic to solver
        phases (``"matvec"``, ``"dot"``, ...).
    """

    op: str
    messages: int
    words: float
    time: float
    tag: Optional[str] = None


@dataclass
class MachineStats:
    """Mutable accumulator for a machine's communication and compute."""

    nprocs: int
    comm_records: List[CommRecord] = field(default_factory=list)
    flops_per_rank: np.ndarray = None  # type: ignore[assignment]
    storage_words_per_rank: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.flops_per_rank is None:
            self.flops_per_rank = np.zeros(self.nprocs, dtype=float)
        if self.storage_words_per_rank is None:
            self.storage_words_per_rank = np.zeros(self.nprocs, dtype=float)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_comm(
        self,
        op: str,
        messages: int,
        words: float,
        time: float,
        tag: Optional[str] = None,
    ) -> None:
        """Append one communication record."""
        self.comm_records.append(CommRecord(op, messages, words, time, tag))

    def record_flops(self, rank: int, flops: float) -> None:
        """Charge ``flops`` operations to ``rank``'s counter."""
        self.flops_per_rank[rank] += flops

    def record_storage(self, rank: int, words: float) -> None:
        """Track ``words`` of additional temporary storage on ``rank``."""
        self.storage_words_per_rank[rank] += words

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.comm_records)

    @property
    def total_words(self) -> float:
        return float(sum(r.words for r in self.comm_records))

    @property
    def comm_time(self) -> float:
        """Sum of modelled times of all communication operations."""
        return float(sum(r.time for r in self.comm_records))

    @property
    def total_flops(self) -> float:
        return float(self.flops_per_rank.sum())

    @property
    def max_rank_flops(self) -> float:
        return float(self.flops_per_rank.max()) if self.nprocs else 0.0

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-rank flops (1.0 = perfectly balanced)."""
        mean = self.flops_per_rank.mean()
        if mean == 0:
            return 1.0
        return float(self.flops_per_rank.max() / mean)

    def by_op(self) -> Dict[str, Dict[str, float]]:
        """Aggregate messages/words/time grouped by operation kind."""
        agg: Dict[str, Dict[str, float]] = defaultdict(
            lambda: {"messages": 0, "words": 0.0, "time": 0.0, "count": 0}
        )
        for r in self.comm_records:
            a = agg[r.op]
            a["messages"] += r.messages
            a["words"] += r.words
            a["time"] += r.time
            a["count"] += 1
        return dict(agg)

    def by_tag(self) -> Dict[str, Dict[str, float]]:
        """Aggregate messages/words/time grouped by caller-supplied tag."""
        agg: Dict[str, Dict[str, float]] = defaultdict(
            lambda: {"messages": 0, "words": 0.0, "time": 0.0, "count": 0}
        )
        for r in self.comm_records:
            a = agg[r.tag or "(untagged)"]
            a["messages"] += r.messages
            a["words"] += r.words
            a["time"] += r.time
            a["count"] += 1
        return dict(agg)

    def snapshot(self) -> "StatsDelta":
        """Capture current totals; subtract later to get an interval."""
        return StatsDelta(
            messages=self.total_messages,
            words=self.total_words,
            comm_time=self.comm_time,
            flops=self.total_flops,
            n_records=len(self.comm_records),
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.comm_records.clear()
        self.flops_per_rank[:] = 0.0
        self.storage_words_per_rank[:] = 0.0


@dataclass(frozen=True)
class StatsDelta:
    """Totals captured by :meth:`MachineStats.snapshot`."""

    messages: int
    words: float
    comm_time: float
    flops: float
    n_records: int

    def since(self, stats: MachineStats) -> "StatsDelta":
        """Totals accumulated in ``stats`` since this snapshot was taken."""
        return StatsDelta(
            messages=stats.total_messages - self.messages,
            words=stats.total_words - self.words,
            comm_time=stats.comm_time - self.comm_time,
            flops=stats.total_flops - self.flops,
            n_records=len(stats.comm_records) - self.n_records,
        )
