"""The proposed ``ON PROCESSOR(f(i))`` iteration mapping (Section 5.1).

"We propose using a ON PROCESSOR(f(i)) construct which will map iteration i
onto processor f(i).  In this way we can specify the iteration mapping at
compile-time without any runtime overhead."  This replaces the costly
inspector--executor discovery of iteration owners when the left-hand side
is accessed through indirection (``q(row(k))``) or has been privatised and
"has no specific owner".

:class:`OnProcessor` evaluates ``f`` over an iteration space once (compile
time -- uncharged) and hands each rank its iteration list.
"""

from __future__ import annotations

from typing import Callable, List, Union

import numpy as np

from ..hpf.errors import MappingError

__all__ = ["OnProcessor"]


class OnProcessor:
    """Compile-time iteration-to-processor mapping.

    Parameters
    ----------
    fn:
        ``f(i) -> rank``; may be a Python callable or anything NumPy can
        evaluate vectorised over an index array.
    nprocs:
        Number of processors; mapped ranks must be in ``[0, nprocs)``.
    """

    def __init__(self, fn: Callable[[np.ndarray], Union[int, np.ndarray]], nprocs: int):
        if nprocs < 1:
            raise MappingError("nprocs must be >= 1")
        self.fn = fn
        self.nprocs = int(nprocs)

    # ------------------------------------------------------------------ #
    @classmethod
    def block(cls, n: int, nprocs: int) -> "OnProcessor":
        """The paper's ``ON PROCESSOR(j/np)`` mapping: contiguous chunks.

        Fortran's ``j/np`` is integer division of the (1-based) iteration
        index by the per-processor chunk; here we use the equivalent
        0-based ``i // ceil(n/P)``.
        """
        chunk = max(1, -(-n // nprocs))
        return cls(lambda i: np.minimum(i // chunk, nprocs - 1), nprocs)

    @classmethod
    def cyclic(cls, nprocs: int) -> "OnProcessor":
        """Round-robin iteration mapping."""
        return cls(lambda i: i % nprocs, nprocs)

    @classmethod
    def from_boundaries(cls, boundaries: np.ndarray) -> "OnProcessor":
        """Map contiguous iteration ranges given by cut points."""
        boundaries = np.asarray(boundaries, dtype=np.int64)
        nprocs = boundaries.size - 1
        return cls(
            lambda i: np.clip(
                np.searchsorted(boundaries, i, side="right") - 1, 0, nprocs - 1
            ),
            nprocs,
        )

    # ------------------------------------------------------------------ #
    def map(self, indices: np.ndarray) -> np.ndarray:
        """Rank of each iteration (vectorised, validated)."""
        indices = np.asarray(indices, dtype=np.int64)
        try:
            ranks = np.asarray(self.fn(indices), dtype=np.int64)
        except Exception:
            ranks = np.fromiter(
                (int(self.fn(int(i))) for i in indices),
                dtype=np.int64,
                count=indices.size,
            )
        ranks = np.broadcast_to(ranks, indices.shape).astype(np.int64)
        if indices.size and (ranks.min() < 0 or ranks.max() >= self.nprocs):
            bad = indices[(ranks < 0) | (ranks >= self.nprocs)][:5]
            raise MappingError(
                f"ON PROCESSOR mapped iterations {bad.tolist()} outside "
                f"[0, {self.nprocs})"
            )
        return ranks

    def partition(self, indices: np.ndarray) -> List[np.ndarray]:
        """Iteration lists per rank, in original order.

        This is the mapping known "at compile-time without any runtime
        overhead": no machine time is charged.
        """
        indices = np.asarray(indices, dtype=np.int64)
        ranks = self.map(indices)
        return [indices[ranks == r] for r in range(self.nprocs)]

    def counts(self, indices: np.ndarray) -> np.ndarray:
        """Iterations assigned to each rank."""
        ranks = self.map(np.asarray(indices, dtype=np.int64))
        out = np.zeros(self.nprocs, dtype=np.int64)
        np.add.at(out, ranks, 1)
        return out
