"""The paper's proposed HPF-2 extensions, as working runtime mechanisms.

Section 5.1: :class:`PrivateRegion` (PRIVATE with MERGE/DISCARD),
:class:`OnProcessor` (compile-time iteration mapping) and the
:class:`InspectorExecutor` baseline it replaces.

Section 5.2: :class:`IndivisableSpec` (atoms), the atom distributions
(:func:`atom_block`, :func:`atom_block_balanced`, :class:`AtomCyclic`),
the load-balancing partitioners, and :class:`SparseMatrixBinding` (the
``SPARSE_MATRIX`` trio directive).
"""

from .atom_dist import AtomCyclic, atom_block, atom_block_balanced, atom_cyclic
from .atoms import IndivisableSpec
from .inspector import CommunicationSchedule, InspectorExecutor
from .on_processor import OnProcessor
from .partitioners import (
    assignment_imbalance,
    capacity_scaled_partitioner,
    cg_balanced_partitioner_1,
    edge_cut_partitioner,
    imbalance,
    lpt_partitioner,
)
from .private import PrivateRegion
from .sparse_directive import SparseMatrixBinding

__all__ = [
    "PrivateRegion",
    "OnProcessor",
    "InspectorExecutor",
    "CommunicationSchedule",
    "IndivisableSpec",
    "atom_block",
    "atom_block_balanced",
    "atom_cyclic",
    "AtomCyclic",
    "capacity_scaled_partitioner",
    "cg_balanced_partitioner_1",
    "lpt_partitioner",
    "edge_cut_partitioner",
    "imbalance",
    "assignment_imbalance",
    "SparseMatrixBinding",
]
