"""The proposed ``PRIVATE`` abstraction with MERGE / DISCARD (Section 5.1).

"We propose a new mechanism which we call PRIVATE abstraction to allow the
program to fork copies of a data structure that are private to each
processor. ... The private variables are merged into a global single copy
again (WITH MERGE option) or discarded completely (WITH DISCARD option) at
the end of the loop (private region)."

A :class:`PrivateRegion` allocates one full-length copy of the array per
processor (charging ``n`` words of temporary storage per rank -- the cost
the paper worries about when ``n >> N_P``), lets each rank accumulate into
its copy freely (eliminating the many-to-one dependency), and merges with a
reduce-scatter into a distributed array, or discards.

Usage::

    with PrivateRegion(machine, n, merge="+") as priv:
        for rank in machine.ranks:
            ...accumulate into priv.local(rank)...
        priv.merge_into(q)          # q: DistributedArray
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..hpf.array import DistributedArray
from ..hpf.intrinsics import sum_private_copies

__all__ = ["PrivateRegion"]


class PrivateRegion:
    """Per-processor private copies of an ``n``-vector.

    Parameters
    ----------
    machine:
        The simulated multicomputer.
    n:
        Length of the privatised array.
    merge:
        ``"+"`` to allow merging, ``None`` for discard-only regions.
    fill:
        Initial value of every private copy (0.0, the additive identity,
        for MERGE(+) regions).
    """

    def __init__(self, machine, n: int, merge: Optional[str] = "+", fill: float = 0.0):
        if merge not in (None, "+"):
            raise ValueError(f"unsupported merge operation {merge!r}")
        self.machine = machine
        self.n = int(n)
        self.merge_op = merge
        self._copies: List[np.ndarray] = [
            np.full(self.n, fill) for _ in range(machine.nprocs)
        ]
        self._closed = False
        # the storage cost the paper flags: n words on *every* processor
        machine.charge_storage_all(float(self.n))

    # ------------------------------------------------------------------ #
    def local(self, rank: int) -> np.ndarray:
        """Rank ``rank``'s private copy (free to mutate, no dependencies)."""
        self._check_open()
        return self._copies[rank]

    @property
    def storage_words_total(self) -> float:
        """Total temporary storage: ``n * N_P`` words."""
        return float(self.n * self.machine.nprocs)

    def merge_into(self, out: DistributedArray, tag: str = "merge") -> DistributedArray:
        """MERGE(+): combine all private copies into the distributed ``out``.

        Implemented as the paper suggests: "A runtime library function
        similar to Fortran 90 SUM intrinsic reduction function" -- a
        reduce-scatter over the private vectors.
        """
        self._check_open()
        if self.merge_op is None:
            raise ValueError("this private region was declared WITH DISCARD")
        if out.n != self.n:
            raise ValueError(f"merge target extent {out.n} != region extent {self.n}")
        sum_private_copies(self._copies, out, tag=tag)
        self._closed = True
        return out

    def discard(self) -> None:
        """WITH DISCARD: drop all private copies, no communication."""
        self._check_open()
        self._copies = []
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("private region already merged or discarded")

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "PrivateRegion":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # leaving the region without an explicit merge discards, as the
        # paper's region semantics imply for DISCARD-mode variables
        if not self._closed:
            self.discard()
