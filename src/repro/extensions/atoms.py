"""Indivisable entities (atoms) within larger data structures (Section 5.2).

"An indivisable entity (atom) is a logical abstraction consisting of a
chunk of elements enclosed within two border elements, and it cannot be
divided among processors during the data distribution process."

For the CSC trio, atom ``i`` of the ``row``/``a`` arrays is the slice
``col(i) : col(i+1)`` -- one whole matrix column.  :class:`IndivisableSpec`
captures that grouping from the indirection (pointer) array, exactly as the
directive ::

    !EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)

declares it, and answers the queries the atom distributions need: atom
sizes (= column nonzero counts, the load weights), the atom containing a
given element, and whether a conventional element distribution would split
atoms across processors.
"""

from __future__ import annotations

import numpy as np

from ..hpf.distribution import Distribution
from ..hpf.errors import DistributionError

__all__ = ["IndivisableSpec"]


class IndivisableSpec:
    """Atom boundaries derived from an indirection (pointer) array.

    Parameters
    ----------
    pointer:
        Monotone array of ``n_atoms + 1`` element offsets (0-based); atom
        ``i`` spans elements ``pointer[i]:pointer[i+1]``.
    array_name, pointer_name:
        Optional names for diagnostics (e.g. ``"row"``, ``"col"``).
    """

    def __init__(self, pointer, array_name: str = None, pointer_name: str = None):
        pointer = np.asarray(pointer, dtype=np.int64)
        if pointer.ndim != 1 or pointer.size < 1:
            raise DistributionError("pointer must be a 1-D array of offsets")
        if (np.diff(pointer) < 0).any():
            raise DistributionError("pointer offsets must be non-decreasing")
        if pointer[0] != 0:
            raise DistributionError("pointer must start at offset 0")
        self.pointer = pointer.copy()
        self.array_name = array_name
        self.pointer_name = pointer_name

    # ------------------------------------------------------------------ #
    @property
    def natoms(self) -> int:
        return self.pointer.size - 1

    @property
    def nelements(self) -> int:
        """Total elements covered by all atoms."""
        return int(self.pointer[-1])

    def atom_sizes(self) -> np.ndarray:
        """Elements per atom -- the load weights for balanced partitioning."""
        return np.diff(self.pointer)

    def atom_range(self, i: int) -> tuple:
        """Element range ``[lo, hi)`` of atom ``i``."""
        if not 0 <= i < self.natoms:
            raise IndexError(f"atom {i} out of range [0, {self.natoms})")
        return int(self.pointer[i]), int(self.pointer[i + 1])

    def atom_of_element(self, k) -> np.ndarray:
        """Atom index containing each element offset (vectorised)."""
        k = np.asarray(k, dtype=np.int64)
        if k.size and (k.min() < 0 or k.max() >= self.nelements):
            raise IndexError("element offset out of range")
        return np.searchsorted(self.pointer, k, side="right") - 1

    # ------------------------------------------------------------------ #
    def split_atoms_under(self, distribution: Distribution) -> np.ndarray:
        """Atoms that a given *element* distribution divides across ranks.

        This quantifies the defect of HPF's regular BLOCK: "The HPF regular
        block distributions divide the data array in an even fashion
        without paying attention to whether the division point is at the
        middle of a column or not."  Returns the indices of split atoms.
        """
        if distribution.n != self.nelements:
            raise DistributionError(
                f"distribution extent {distribution.n} != atom elements "
                f"{self.nelements}"
            )
        if distribution.is_replicated or self.nelements == 0:
            return np.empty(0, dtype=np.int64)
        owners = distribution.owners(np.arange(self.nelements, dtype=np.int64))
        sizes = self.atom_sizes()
        nonempty = np.nonzero(sizes > 0)[0]
        if nonempty.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.pointer[nonempty]
        lo = np.minimum.reduceat(owners, starts)
        hi = np.maximum.reduceat(owners, starts)
        # reduceat segments run to the next start; the final segment runs to
        # the array end, which is exactly the last non-empty atom's extent
        return nonempty[lo != hi]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndivisableSpec(array={self.array_name!r}, "
            f"pointer={self.pointer_name!r}, natoms={self.natoms}, "
            f"nelements={self.nelements})"
        )
