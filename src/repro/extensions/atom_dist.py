"""Atom-based distributions: ``REDISTRIBUTE x(ATOM: BLOCK)`` etc. (Section 5.2).

"This directive ensures that the elements of the row vector are distributed
in a similar fashion to the regular HPF BLOCK distribution, yet the atoms
instead of individual elements are used as the basis in the distribution.
This ensures that elements of an atom is not divided among two or more
processors."

Given an :class:`~repro.extensions.atoms.IndivisableSpec`, these builders
return *element* distributions (over the ``row``/``a`` arrays) together
with the atom cut points:

* :func:`atom_block` -- even atom counts per rank (the uniform case of
  Section 5.2.1);
* :func:`atom_block_balanced` -- cut points from
  :func:`~repro.extensions.partitioners.cg_balanced_partitioner_1` applied
  to the atom weights (the irregular case of Section 5.2.2);
* :func:`atom_cyclic` -- round-robin whole atoms (``ATOM: CYCLIC``).

BLOCK variants produce an :class:`~repro.hpf.distribution.IrregularBlock`
whose state is exactly the ``N_P + 1`` cut-point array the paper says can
be "replicated over all processors" instead of a full distribution map.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..hpf.distribution import Distribution, IrregularBlock
from ..hpf.errors import DistributionError
from .atoms import IndivisableSpec
from .partitioners import cg_balanced_partitioner_1

__all__ = ["atom_block", "atom_block_balanced", "atom_cyclic", "AtomCyclic"]


def _element_cuts(spec: IndivisableSpec, atom_cuts: np.ndarray) -> np.ndarray:
    """Translate atom cut points to element cut points via the pointer."""
    return spec.pointer[atom_cuts]


def atom_block(
    spec: IndivisableSpec, nprocs: int
) -> Tuple[IrregularBlock, np.ndarray]:
    """``(ATOM: BLOCK)``: contiguous, equal *atom counts* per rank.

    Returns ``(element_distribution, atom_cuts)``.
    """
    if nprocs < 1:
        raise DistributionError("nprocs must be >= 1")
    k = max(1, -(-spec.natoms // nprocs))
    atom_cuts = np.minimum(np.arange(nprocs + 1, dtype=np.int64) * k, spec.natoms)
    return IrregularBlock(_element_cuts(spec, atom_cuts), nprocs), atom_cuts


def atom_block_balanced(
    spec: IndivisableSpec, nprocs: int, weights: Optional[np.ndarray] = None
) -> Tuple[IrregularBlock, np.ndarray]:
    """``(ATOM: BLOCK)`` with load-balancing cut points.

    ``weights`` defaults to the atom sizes (nonzeros per column), which is
    the mat-vec work per atom; the optimal contiguous bottleneck partition
    is used -- the runtime of ``REDISTRIBUTE smA USING
    CG_BALANCED_PARTITIONER_1``.
    """
    if weights is None:
        weights = spec.atom_sizes().astype(np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size != spec.natoms:
        raise DistributionError(
            f"need one weight per atom ({spec.natoms}), got {weights.size}"
        )
    atom_cuts = cg_balanced_partitioner_1(weights, nprocs)
    return IrregularBlock(_element_cuts(spec, atom_cuts), nprocs), atom_cuts


class AtomCyclic(Distribution):
    """``(ATOM: CYCLIC)``: whole atoms dealt round-robin to processors.

    Elements of atom ``i`` live on rank ``i % nprocs``; an atom is never
    split.  Local element order follows global element order.
    """

    def __init__(self, spec: IndivisableSpec, nprocs: int):
        super().__init__(spec.nelements, nprocs)
        self.spec = spec
        self._atom_owner = (
            np.arange(spec.natoms, dtype=np.int64) % nprocs
            if spec.natoms
            else np.empty(0, dtype=np.int64)
        )
        elem_atoms = (
            spec.atom_of_element(np.arange(spec.nelements, dtype=np.int64))
            if spec.nelements
            else np.empty(0, dtype=np.int64)
        )
        self._elem_owner = (
            self._atom_owner[elem_atoms] if spec.nelements else elem_atoms
        )
        # local position: running count of elements per owner
        self._local_pos = np.zeros(spec.nelements, dtype=np.int64)
        for r in range(nprocs):
            mask = self._elem_owner == r
            self._local_pos[mask] = np.arange(int(mask.sum()), dtype=np.int64)

    def owners(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        return self._elem_owner[idx]

    def local_indices(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        return np.nonzero(self._elem_owner == rank)[0].astype(np.int64)

    def global_to_local(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        return self._local_pos[idx]

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.n == other.n  # type: ignore[union-attr]
            and self.nprocs == other.nprocs  # type: ignore[union-attr]
            and np.array_equal(self.spec.pointer, other.spec.pointer)  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:
        return hash(("AtomCyclic", self.n, self.nprocs, self.spec.pointer.tobytes()))


def atom_cyclic(spec: IndivisableSpec, nprocs: int) -> AtomCyclic:
    """Build the ``(ATOM: CYCLIC)`` element distribution."""
    return AtomCyclic(spec, nprocs)
