"""Inspector--executor baseline for runtime iteration mapping.

"As the array q is accessed through a level of indirection, the value of
its index (i.e. row(k)) can be known only at run-time.  Inspector-executor
mechanisms [15] which are costly in nature should be employed for the
determination of the owner of the lhs."  The paper proposes ``ON
PROCESSOR(f(i))`` precisely to avoid this runtime cost.

:class:`InspectorExecutor` implements the costly baseline so benchmark E9
can measure the difference: an *inspector* phase scans every iteration,
resolves the owner of its left-hand-side element through the indirection
array, and exchanges a communication schedule; the *executor* then runs
iterations on their owners.  Schedules can be **reused** across iterations
of the CG loop ("Runtime Compilation Techniques for Data Partitioning and
Communication Schedule Reuse", the paper's reference [20]) -- reuse makes
the amortised cost approach ON PROCESSOR's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..hpf.distribution import Block, Distribution

__all__ = ["CommunicationSchedule", "InspectorExecutor"]


@dataclass
class CommunicationSchedule:
    """The inspector's product: per-rank iteration lists plus cost record."""

    partition: List[np.ndarray]
    moved_iterations: int
    build_messages: int
    build_words: float
    build_time: float
    reuses: int = field(default=0)

    def iterations_for(self, rank: int) -> np.ndarray:
        return self.partition[rank]

    def reuse(self) -> "CommunicationSchedule":
        """Reuse the schedule for another loop instance (free)."""
        self.reuses += 1
        return self


class InspectorExecutor:
    """Runtime owner discovery for indirection-addressed loops."""

    #: flops charged per inspected iteration (indirection load, owner
    #: lookup, branch) -- the "costly in nature" per-element overhead
    INSPECT_FLOPS_PER_ITERATION = 5.0

    def __init__(self, machine):
        self.machine = machine

    def build_schedule(
        self,
        n_iterations: int,
        lhs_indices: np.ndarray,
        lhs_distribution: Distribution,
        initial: Distribution = None,
        tag: str = "inspector",
    ) -> CommunicationSchedule:
        """Run the inspector phase and charge its cost.

        Parameters
        ----------
        n_iterations:
            Loop trip count.
        lhs_indices:
            ``lhs_indices[i]`` is the element the ``i``-th iteration assigns
            (e.g. ``row(k)`` for the CSC scatter loop).
        lhs_distribution:
            Distribution of the assigned array -- owner-computes places the
            iteration on ``lhs_distribution.owner(lhs_indices[i])``.
        initial:
            Where iterations start out before the inspector moves them
            (default: HPF BLOCK over the iteration space).
        """
        lhs_indices = np.asarray(lhs_indices, dtype=np.int64)
        if lhs_indices.shape != (n_iterations,):
            raise ValueError(
                f"need one lhs index per iteration, got shape {lhs_indices.shape}"
            )
        machine = self.machine
        if initial is None:
            initial = Block(n_iterations, machine.nprocs)
        iters = np.arange(n_iterations, dtype=np.int64)
        init_rank = (
            initial.owners(iters)
            if not initial.is_replicated
            else np.zeros(n_iterations, dtype=np.int64)
        )
        owner_rank = lhs_distribution.owners(lhs_indices)

        before = machine.stats.snapshot()
        t0 = machine.elapsed()
        # inspect: every rank scans its initial iterations
        for r in range(machine.nprocs):
            count = int(np.count_nonzero(init_rank == r))
            machine.charge_compute(r, self.INSPECT_FLOPS_PER_ITERATION * count)
        # exchange: iterations whose owner differs move (index word each);
        # schedule metadata goes through an alltoall
        moved = int(np.count_nonzero(init_rank != owner_rank))
        per_pair = moved / max(1, machine.nprocs * (machine.nprocs - 1))
        if machine.nprocs > 1:
            machine.alltoall(per_pair, tag=tag)
        build_time = machine.elapsed() - t0
        delta = before.since(machine.stats)

        partition = [iters[owner_rank == r] for r in range(machine.nprocs)]
        return CommunicationSchedule(
            partition=partition,
            moved_iterations=moved,
            build_messages=delta.messages,
            build_words=delta.words,
            build_time=build_time,
        )
