"""Load-balancing sparse partitioners (Section 5.2.2).

"It is possible to specify a load-balancing heuristic that is applied to
the A, row and col arrays to cluster the rows in a way that can be
distributed among the processors in an almost even-load fashion."

The partitioners map *atoms* (whole rows or columns, weighted by their
nonzero counts) onto processors:

* :func:`cg_balanced_partitioner_1` -- the directive's
  ``CG_BALANCED_PARTITIONER_1``: the optimal *contiguous* chunking, found
  by binary search on the bottleneck weight.  Contiguity preserves "the
  continuity of the column (or row) elements", so only the ``N_P + 1``
  cut-point array needs to be stored;
* :func:`lpt_partitioner` -- the classic Longest-Processing-Time greedy
  heuristic, allowed to break contiguity (tighter balance, bigger
  distribution map);
* :func:`edge_cut_partitioner` -- a Kernighan--Lin graph bisection (via
  networkx) that also minimises the communication-inducing edge cut,
  standing in for the "problem specific structure ... identifiable to a
  human but not to a compiler".

All return either cut points or an atom->rank assignment plus
:func:`imbalance` diagnostics.
"""

from __future__ import annotations

import numpy as np

from ..hpf.errors import DistributionError

__all__ = [
    "cg_balanced_partitioner_1",
    "capacity_scaled_partitioner",
    "lpt_partitioner",
    "edge_cut_partitioner",
    "imbalance",
    "assignment_imbalance",
]


def _check_weights(weights) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise DistributionError("weights must be 1-D")
    if (weights < 0).any():
        raise DistributionError("weights must be non-negative")
    return weights


def _feasible(weights: np.ndarray, nparts: int, cap: float) -> bool:
    """Can the sequence be cut into <= nparts contiguous chunks of sum <= cap?"""
    parts = 1
    acc = 0.0
    for w in weights:
        if w > cap:
            return False
        if acc + w > cap:
            parts += 1
            acc = w
            if parts > nparts:
                return False
        else:
            acc += w
    return True


def _cuts_for_cap(weights: np.ndarray, nparts: int, cap: float) -> np.ndarray:
    """Greedy chunk starts for a feasible capacity, padded to nparts parts."""
    starts = [0]
    acc = 0.0
    for i, w in enumerate(weights):
        if acc + w > cap and acc > 0:
            starts.append(i)
            acc = w
        else:
            acc += w
    if len(starts) > nparts:
        raise DistributionError("internal error: infeasible capacity")
    cuts = starts + [int(weights.size)] * (nparts + 1 - len(starts))
    return np.asarray(cuts, dtype=np.int64)


def cg_balanced_partitioner_1(weights, nparts: int) -> np.ndarray:
    """Optimal contiguous chunking minimising the bottleneck weight.

    Parameters
    ----------
    weights:
        Per-atom load (nonzeros per column/row).
    nparts:
        Number of processors.

    Returns
    -------
    numpy.ndarray
        ``nparts + 1`` cut points; rank ``r`` owns atoms
        ``cuts[r]:cuts[r+1]``.  This is "a small array in the size of the
        number of processors [that] keeps the cut-off points, and it is
        replicated over all processors".

    Notes
    -----
    Binary search on the bottleneck capacity with a greedy feasibility
    check gives the optimal contiguous partition in
    ``O(n log(sum w / min w))``.
    """
    weights = _check_weights(weights)
    if nparts < 1:
        raise DistributionError("nparts must be >= 1")
    n = weights.size
    if n == 0:
        return np.zeros(nparts + 1, dtype=np.int64)
    lo = float(weights.max())
    hi = float(weights.sum())
    if lo == 0.0:
        return _even_cuts(n, nparts)
    # binary search over achievable bottleneck values
    for _ in range(64):
        if hi - lo <= 1e-9 * max(1.0, hi):
            break
        mid = 0.5 * (lo + hi)
        if _feasible(weights, nparts, mid):
            hi = mid
        else:
            lo = mid
    cuts = _cuts_for_cap(weights, nparts, hi)
    cuts[0] = 0
    cuts[-1] = n
    return cuts


def _even_cuts(n: int, nparts: int) -> np.ndarray:
    k = -(-n // nparts)
    return np.minimum(np.arange(nparts + 1, dtype=np.int64) * k, n)


def _capacity_feasible(
    weights: np.ndarray, capacities: np.ndarray, t: float, cuts_out=None
) -> bool:
    """Can contiguous chunks fit with chunk ``r`` weighing <= t*capacities[r]?

    Greedy in rank order: each rank takes atoms until its scaled cap would
    overflow.  Optionally records the cut points it found.
    """
    starts = [0]
    i = 0
    n = weights.size
    for r in range(capacities.size):
        cap = t * capacities[r]
        acc = 0.0
        while i < n and acc + weights[i] <= cap:
            acc += weights[i]
            i += 1
        starts.append(i)
    if cuts_out is not None:
        cuts_out[:] = starts
    return i == n


def capacity_scaled_partitioner(weights, capacities) -> np.ndarray:
    """Contiguous chunking for processors of *unequal* speed.

    The degraded-mode rebalancer's workhorse: a straggler running at
    ``1/f`` of nominal speed gets capacity ``1/f``, so the optimal
    bottleneck *time* (chunk weight divided by capacity) is minimised
    instead of the bottleneck weight.  With all capacities equal this
    reduces to :func:`cg_balanced_partitioner_1`.

    Parameters
    ----------
    weights:
        Per-atom load (nonzeros per row).
    capacities:
        Per-rank relative speeds (positive; 1.0 = nominal).

    Returns
    -------
    numpy.ndarray
        ``len(capacities) + 1`` cut points, rank-ordered.
    """
    weights = _check_weights(weights)
    capacities = np.asarray(capacities, dtype=np.float64)
    if capacities.ndim != 1 or capacities.size == 0:
        raise DistributionError("capacities must be a non-empty 1-D array")
    if (capacities <= 0).any():
        raise DistributionError("capacities must be positive")
    nparts = capacities.size
    n = weights.size
    if n == 0 or weights.sum() == 0.0:
        return _even_cuts(n, nparts)
    # binary search on the bottleneck completion time T
    lo = 0.0
    hi = float(weights.sum() / capacities.min())
    for _ in range(64):
        if hi - lo <= 1e-9 * max(1.0, hi):
            break
        mid = 0.5 * (lo + hi)
        if _capacity_feasible(weights, capacities, mid):
            hi = mid
        else:
            lo = mid
    cuts = [0] * (nparts + 1)
    if not _capacity_feasible(weights, capacities, hi, cuts_out=cuts):
        raise DistributionError("internal error: infeasible capacity bound")
    cuts[0], cuts[-1] = 0, n
    return np.asarray(cuts, dtype=np.int64)


def lpt_partitioner(weights, nparts: int, seed: int = None) -> np.ndarray:
    """Longest-Processing-Time greedy assignment (non-contiguous).

    Sorts atoms by decreasing weight and assigns each to the currently
    lightest processor.  Returns an atom->rank assignment array.  The
    4/3-approximate makespan usually beats contiguous chunking, but the
    distribution map is O(n_atoms) -- the storage trade-off the paper's
    atom distributions avoid.
    """
    weights = _check_weights(weights)
    if nparts < 1:
        raise DistributionError("nparts must be >= 1")
    order = np.argsort(-weights, kind="stable")
    loads = np.zeros(nparts)
    assign = np.empty(weights.size, dtype=np.int64)
    for atom in order:
        r = int(np.argmin(loads))
        assign[atom] = r
        loads[r] += weights[atom]
    return assign


def edge_cut_partitioner(matrix, nparts: int, seed: int = 0) -> np.ndarray:
    """Recursive Kernighan--Lin bisection on the sparsity graph.

    Balances *vertex* counts while heuristically minimising the edge cut
    (off-processor couplings), i.e. the communication a distributed
    mat-vec would pay.  ``nparts`` must be a power of two.  Returns a
    row->rank assignment array.
    """
    import networkx as nx

    if nparts < 1 or nparts & (nparts - 1):
        raise DistributionError("edge_cut_partitioner needs a power-of-two nparts")
    coo = matrix.to_coo()
    n = matrix.nrows
    g = nx.Graph()
    g.add_nodes_from(range(n))
    off = coo.rows != coo.cols
    g.add_edges_from(zip(coo.rows[off].tolist(), coo.cols[off].tolist()))
    assign = np.zeros(n, dtype=np.int64)

    def _bisect(nodes, base: int, parts: int, level: int) -> None:
        if parts == 1 or len(nodes) <= 1:
            for v in nodes:
                assign[v] = base
            return
        sub = g.subgraph(nodes)
        half_a, half_b = nx.algorithms.community.kernighan_lin_bisection(
            sub, seed=seed + level
        )
        _bisect(sorted(half_a), base, parts // 2, level + 1)
        _bisect(sorted(half_b), base + parts // 2, parts // 2, level + 1)

    _bisect(list(range(n)), 0, nparts, 0)
    return assign


def imbalance(weights, cuts) -> float:
    """Max/mean chunk weight for contiguous cut points (1.0 = perfect)."""
    weights = _check_weights(weights)
    cuts = np.asarray(cuts, dtype=np.int64)
    prefix = np.concatenate([[0.0], np.cumsum(weights)])
    loads = prefix[cuts[1:]] - prefix[cuts[:-1]]
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)


def assignment_imbalance(weights, assign, nparts: int) -> float:
    """Max/mean processor load for an atom->rank assignment."""
    weights = _check_weights(weights)
    loads = np.zeros(nparts)
    np.add.at(loads, np.asarray(assign, dtype=np.int64), weights)
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)
