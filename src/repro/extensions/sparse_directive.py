"""The proposed ``SPARSE_MATRIX`` directive: binding the (ptr, idx, val) trio.

::

    !HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)

"A sparse matrix definition puts a tight binding between the members of
this trio, whenever any one's distribution is changed, the other two should
be aligned accordingly.  Furthermore, if an element of row is to be
accessed, most probably the elements it points to in col and a will be also
accessed, therefore compiler should generate code for bringing them into
memory if they are not local.  In short, the compiler can exploit the
locality rule by knowing the relation among the members of the trio."

:class:`SparseMatrixBinding` is that runtime object: it holds the three
distributed arrays, keeps ``idx``/``val`` permanently aligned, derives the
:class:`~repro.extensions.atoms.IndivisableSpec` (one atom per row/column),
and implements the atom redistributions including ``REDISTRIBUTE smA USING
CG_BALANCED_PARTITIONER_1``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hpf.array import DistributedArray
from ..hpf.distribution import BlockK, Distribution, IrregularBlock
from ..hpf.errors import DirectiveSemanticError, DistributionError
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from .atom_dist import atom_block, atom_block_balanced
from .atoms import IndivisableSpec

__all__ = ["SparseMatrixBinding"]


class SparseMatrixBinding:
    """Runtime binding of a sparse matrix's three arrays.

    Parameters
    ----------
    machine:
        Simulated multicomputer.
    matrix:
        A :class:`CSRMatrix` or :class:`CSCMatrix`; the format decides
        whether atoms are rows (CSR) or columns (CSC).
    name:
        The directive's matrix name (``smA``).
    elem_dist:
        Initial distribution of the element arrays (default HPF ``BLOCK``
        over the ``nnz`` space -- the "initially distributed using HPF's
        regular distribution primitives" state, before runtime
        redistribution).
    """

    def __init__(
        self,
        machine,
        matrix,
        name: str = "smA",
        elem_dist: Optional[Distribution] = None,
    ):
        if isinstance(matrix, CSRMatrix):
            self.fmt = "CSR"
        elif isinstance(matrix, CSCMatrix):
            self.fmt = "CSC"
        else:
            raise DirectiveSemanticError(
                "SPARSE_MATRIX binds CSR or CSC matrices, got "
                f"{type(matrix).__name__}"
            )
        self.machine = machine
        self.matrix = matrix
        self.name = name
        n_ptr = matrix.indptr.size  # n + 1
        nnz = matrix.nnz
        # the paper's pointer distribution: BLOCK((n+NP-1)/NP) with the
        # (n+1)-th element clamped onto the last processor
        n = n_ptr - 1
        k = max(1, -(-n // machine.nprocs)) if n else 1
        self.ptr = DistributedArray.from_global(
            machine,
            matrix.indptr.astype(np.float64),
            BlockK(n_ptr, machine.nprocs, k, clamp=True),
            name=f"{name}.ptr",
        )
        if elem_dist is None:
            from ..hpf.distribution import Block

            elem_dist = Block(nnz, machine.nprocs)
        self.idx = DistributedArray.from_global(
            machine,
            matrix.indices.astype(np.float64),
            elem_dist,
            name=f"{name}.idx",
        )
        # ALIGN a(:) WITH col(:) -- values ride with the index array
        self.val = DistributedArray.from_global(
            machine, matrix.data, elem_dist, name=f"{name}.val"
        )
        self.val.align_with(self.idx)
        self.atom_cuts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of atoms (rows for CSR, columns for CSC)."""
        return self.ptr.n - 1

    @property
    def nnz(self) -> int:
        return self.idx.n

    @property
    def elem_dist(self) -> Distribution:
        return self.idx.distribution

    def indivisable_spec(self) -> IndivisableSpec:
        """``INDIVISABLE idx(ATOM:i) :: ptr(i:i+1)`` for this trio."""
        kind = "row" if self.fmt == "CSR" else "col"
        return IndivisableSpec(
            self.matrix.indptr,
            array_name=f"{self.name}.idx",
            pointer_name=f"{self.name}.{kind}",
        )

    # ------------------------------------------------------------------ #
    # tight-binding redistribution
    # ------------------------------------------------------------------ #
    def redistribute_elements(
        self, new_dist: Distribution, charge: bool = True
    ) -> None:
        """Move ``idx`` and ``val`` together (they are one alignment group)."""
        if new_dist.n != self.nnz:
            raise DistributionError(
                f"element distribution extent {new_dist.n} != nnz {self.nnz}"
            )
        self.idx.redistribute(new_dist, charge=charge)

    def _redistribute_ptr_for_atoms(self, atom_cuts: np.ndarray, charge: bool) -> None:
        """Align the pointer array with an atom partition.

        Rank ``r`` holds pointer entries ``atom_cuts[r] : atom_cuts[r+1]``
        (plus the final fence on the last rank), so each rank can walk its
        own atoms locally.
        """
        bounds = atom_cuts.astype(np.int64).copy()
        bounds[-1] = self.ptr.n  # the n+1-th fence rides with the last rank
        self.ptr.redistribute(IrregularBlock(bounds, self.machine.nprocs), charge=charge)

    def redistribute_atoms_uniform(self, charge: bool = True) -> np.ndarray:
        """``REDISTRIBUTE idx(ATOM: BLOCK)``: even atom counts per rank."""
        dist, atom_cuts = atom_block(self.indivisable_spec(), self.machine.nprocs)
        self.redistribute_elements(dist, charge=charge)
        self._redistribute_ptr_for_atoms(atom_cuts, charge=charge)
        self.atom_cuts = atom_cuts
        return atom_cuts

    def redistribute_atoms_balanced(
        self, weights: Optional[np.ndarray] = None, charge: bool = True
    ) -> np.ndarray:
        """``REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1``.

        Atoms are chunked contiguously so per-rank nonzero counts are as
        even as possible; the element arrays and the pointer array follow
        ("the compiler ... redistributes the elements of dependent vectors
        accordingly later").
        """
        dist, atom_cuts = atom_block_balanced(
            self.indivisable_spec(), self.machine.nprocs, weights
        )
        self.redistribute_elements(dist, charge=charge)
        self._redistribute_ptr_for_atoms(atom_cuts, charge=charge)
        self.atom_cuts = atom_cuts
        return atom_cuts

    def apply_partitioner(self, partitioner: str, charge: bool = True) -> np.ndarray:
        """Dispatch a ``REDISTRIBUTE ... USING <name>`` directive."""
        key = partitioner.upper()
        if key in ("CG_BALANCED_PARTITIONER_1", "CG_BALANCED_PARTITIONER"):
            return self.redistribute_atoms_balanced(charge=charge)
        if key in ("ATOM_BLOCK", "UNIFORM"):
            return self.redistribute_atoms_uniform(charge=charge)
        raise DirectiveSemanticError(f"unknown partitioner {partitioner!r}")

    # ------------------------------------------------------------------ #
    # locality queries
    # ------------------------------------------------------------------ #
    def atom_owner_of_rows(self) -> np.ndarray:
        """Owning rank of each atom (row/column) under the pointer layout."""
        # atom i is owned by the owner of pointer element i
        return self.ptr.distribution.owners(np.arange(self.n, dtype=np.int64))

    def nonlocal_elements(self) -> np.ndarray:
        """Per-rank count of element entries its atoms need but does not own.

        "a processor that is responsible from a specific row may not have
        all the actual data elements (i.e., col and a) on that row.
        Therefore, additional communication is needed to bring in those
        missing elements."  This is the quantity benchmark E7 measures.
        """
        nprocs = self.machine.nprocs
        out = np.zeros(nprocs, dtype=np.int64)
        if self.nnz == 0:
            return out
        elem_owner = self.elem_dist.owners(np.arange(self.nnz, dtype=np.int64))
        atom_owner = self.atom_owner_of_rows()
        spec = self.indivisable_spec()
        elem_atoms = spec.atom_of_element(np.arange(self.nnz, dtype=np.int64))
        needed_by = atom_owner[elem_atoms]  # rank that computes with element k
        out_counts = np.zeros(nprocs, dtype=np.int64)
        nonlocal_mask = needed_by != elem_owner
        np.add.at(out_counts, needed_by[nonlocal_mask], 1)
        return out_counts

    def charge_prefetch(self, tag: str = "prefetch") -> float:
        """Charge the machine for fetching all non-local atom elements.

        Models the directive's locality rule: the compiler knows the trio
        relation and prefetches ``col``/``a`` entries for each locally
        owned ``row`` entry in bulk (index + value words per element, one
        message per source rank).
        """
        counts = self.nonlocal_elements()
        total_words = float(2 * counts.sum())  # an index word + a value word
        if total_words == 0:
            return 0.0
        nprocs = self.machine.nprocs
        # message count: distinct (needer, owner) pairs
        elem_owner = self.elem_dist.owners(np.arange(self.nnz, dtype=np.int64))
        spec = self.indivisable_spec()
        elem_atoms = spec.atom_of_element(np.arange(self.nnz, dtype=np.int64))
        needed_by = self.atom_owner_of_rows()[elem_atoms]
        mask = needed_by != elem_owner
        pairs = np.unique(needed_by[mask] * nprocs + elem_owner[mask])
        cost = self.machine.cost
        per_rank_words = 2.0 * counts.astype(float)
        time = float(
            (per_rank_words * cost.t_comm).max()
            + cost.t_startup * max(1, int(np.ceil(pairs.size / nprocs)))
        )
        self.machine.charge_comm_interval(
            "prefetch", int(pairs.size), total_words, time, tag,
            participants=np.nonzero(counts)[0].tolist(),
        )
        return time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseMatrixBinding({self.fmt}, name={self.name!r}, n={self.n}, "
            f"nnz={self.nnz})"
        )
