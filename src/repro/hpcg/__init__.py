"""HPCG-class workload: 3-D 27-point stencils, geometric multigrid, and
bitwise-reproducible distributed CG.

The paper's scenarios stop at 1-D/2-D sparse layouts; this package adds the
workload modern CG evaluation is built around (the HPCG benchmark): the
:func:`~repro.sparse.generators.stencil27` operator distributed over a 3-D
process grid (:class:`~repro.hpf.distribution.Grid3DBlock`) with
face/edge/corner halo exchange, a geometric multigrid V-cycle
preconditioner built on the SSOR symmetric Gauss--Seidel machinery
(:class:`~repro.hpcg.mg.MultigridPreconditioner`), and a rank program
(:class:`~repro.hpcg.program.HPCGRankProgram`) whose ``reproducible=True``
mode rides every inner product on the superaccumulator of
:mod:`repro.backend.reproducible` -- making the solution bitwise invariant
to rank count, topology, backend and reduction fusion.
"""

from .mg import MultigridPreconditioner
from .program import HPCGRankProgram
from .solve import assemble_hpcg_result, hpcg_solve

__all__ = [
    "MultigridPreconditioner",
    "HPCGRankProgram",
    "hpcg_solve",
    "assemble_hpcg_result",
]
