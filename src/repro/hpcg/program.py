"""Backend-portable HPCG rank program: 3-D halo exchange + reproducible CG.

:class:`HPCGRankProgram` runs preconditioned conjugate gradients on a
:func:`~repro.sparse.generators.stencil27` system distributed over the 3-D
subcube layout of :class:`~repro.hpf.distribution.Grid3DBlock`.  Like the
row-block programs it is a picklable factory -- ``program(rank, size)``
yields the rank's generator -- and runs identically on the simulated and
process backends.

Design choices that make the bitwise-reproducibility pin possible:

* **one recurrence, two communication schedules.**  Genuinely different
  update orders (classic two-reduction CG vs the Chronopoulos--Gear
  recurrence) can never be bitwise equal, exact dots or not.  This program
  therefore always runs the *preconditioned Chronopoulos--Gear* recurrence,
  whose three per-iteration inner products (``gamma = r.u``,
  ``delta = w.u``, ``rnorm2 = r.r``) are all available together after the
  mat-vec; ``fused`` only chooses whether they travel in three separate
  reduction trees (``classic``) or one packed
  :func:`~repro.machine.spmd.allreduce_vec` (``fused``).  Slot-wise, both
  schedules perform the identical additions in the identical binomial-tree
  order, so classic and fused agree bitwise at any fixed rank count -- and
  with ``reproducible=True`` (exact superaccumulator reductions) across
  rank counts too.

* **halo exchange vs replicated preconditioning.**  With a local
  preconditioner (``none``/``jacobi``) the mat-vec operand is only known
  locally, so ranks exchange the faces, edges and corners of their subcube
  with up to 26 neighbours; received values land in a full-length scatter
  buffer so the CSR accumulation order -- and hence every mat-vec bit -- is
  independent of the partition.  With ``mg`` the residual is allgathered
  and every rank applies the deterministic V-cycle to the *full* vector
  (the serialised-preconditioner treatment of
  :func:`repro.core.pcg.hpf_pcg`, charged at ``flops_per_apply``), so the
  mat-vec needs no halo at all.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..backend.abft import (
    AbftChecksumError,
    column_checksums,
    decode_dot,
)
from ..backend.programs import csr_arrays
from ..backend.reproducible import (
    dot_slots,
    pack_slots,
    render_slots,
    sum_slots,
    unpack_slots,
)
from ..core.resilience import RecoveryExhaustedError
from ..core.stopping import StoppingCriterion
from ..hpf.distribution import Grid3DBlock
from ..machine import reliable as rel
from ..machine import spmd
from ..machine.events import Checkpoint, Compute, Recv, Send
from ..machine.faults import FaultPlan, RankFailedError
from ..machine.reliable import ReliableConfig, ReliableEndpoint
from .mg import MultigridPreconditioner

__all__ = [
    "HPCGRankProgram",
    "ResilientHPCGProgram",
    "HPCG_PRECONDS",
    "halo_plan",
]

HPCG_PRECONDS = ("none", "jacobi", "mg")

#: tag of the halo point-to-point exchange (clear of the collectives' tags)
_HALO_TAG = 31

#: modelled per-element overhead of splat + render on a reproducible dot
_REPRO_FLOPS = 8.0


def _box_intersect(a, b):
    """Intersection of two ``((xlo,xhi),(ylo,yhi),(zlo,zhi))`` boxes."""
    out = []
    for (alo, ahi), (blo, bhi) in zip(a, b):
        lo, hi = max(alo, blo), min(ahi, bhi)
        if lo >= hi:
            return None
        out.append((lo, hi))
    return tuple(out)


def _box_expand(box, shape):
    """Grow a box by one cell per face, clipped to the global grid."""
    return tuple(
        (max(0, lo - 1), min(dim, hi + 1))
        for (lo, hi), dim in zip(box, shape)
    )


def _box_ids(box, shape) -> np.ndarray:
    """Global ids inside a box, in global row-major (z, y, x) order."""
    nx, ny, nz = shape
    (xlo, xhi), (ylo, yhi), (zlo, zhi) = box
    ids = np.arange(nx * ny * nz, dtype=np.int64).reshape(nz, ny, nx)
    return ids[zlo:zhi, ylo:yhi, xlo:xhi].ravel()


def halo_plan(layout: Grid3DBlock, rank: int) -> List[Dict[str, Any]]:
    """Per-neighbour halo schedule for ``rank`` under ``layout``.

    Each entry names the neighbour rank, its kind (``face``/``edge``/
    ``corner`` by the number of process-grid axes that differ), the global
    ids this rank must *send* (its own cells the neighbour's stencil
    reads) and the global ids it will *receive* (the neighbour's cells its
    own stencil reads).  Both sides compute the same plan from the layout
    alone, so no negotiation messages are needed.
    """
    px, py, pz = layout.grid
    rx, ry, rz = layout.coords(rank)
    my_box = layout.local_box(rank)
    shape = layout.shape
    plan: List[Dict[str, Any]] = []
    for dz in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                if (dx, dy, dz) == (0, 0, 0):
                    continue
                cx, cy, cz = rx + dx, ry + dy, rz + dz
                if not (0 <= cx < px and 0 <= cy < py and 0 <= cz < pz):
                    continue
                nb = layout.rank_of(cx, cy, cz)
                nb_box = layout.local_box(nb)
                send_box = _box_intersect(my_box, _box_expand(nb_box, shape))
                recv_box = _box_intersect(_box_expand(my_box, shape), nb_box)
                if send_box is None and recv_box is None:
                    continue
                if (send_box is None) != (recv_box is None):
                    raise RuntimeError(
                        f"asymmetric halo between ranks {rank} and {nb}"
                    )
                kind = ("face", "edge", "corner")[
                    abs(dx) + abs(dy) + abs(dz) - 1
                ]
                plan.append({
                    "rank": nb,
                    "kind": kind,
                    "send_ids": _box_ids(send_box, shape),
                    "recv_ids": _box_ids(recv_box, shape),
                })
    return plan


class HPCGRankProgram:
    """Preconditioned CG on a 3-D 27-point stencil, subcube-distributed.

    Parameters
    ----------
    matrix, b:
        The :func:`stencil27` system (CSR-convertible) and right-hand side.
    shape:
        Grid dimensions ``(nx, ny, nz)`` with ``nx*ny*nz`` matrix rows.
    precond:
        ``"none"``, ``"jacobi"`` (local diagonal scaling) or ``"mg"``
        (replicated geometric V-cycle).
    fused:
        Pack the three per-iteration inner products into one
        ``allreduce_vec`` instead of three separate trees.  Numerics are
        identical either way (see module docstring).
    reproducible:
        Ride every inner product on the fixed-point superaccumulator of
        :mod:`repro.backend.reproducible`: dots and norms become bitwise
        invariant to rank count, topology, backend and fusion, at the cost
        of wider reduction payloads.

    Each rank returns ``(x_block, residuals, converged, iterations,
    extras)`` where ``extras`` carries the per-iteration scalar trajectory
    (``alphas``/``betas``/``gammas`` -- the bitwise pin checks these), halo
    statistics and per-phase compute seconds.
    """

    def __init__(
        self,
        matrix,
        b: np.ndarray,
        shape: Tuple[int, int, int],
        x0: Optional[np.ndarray] = None,
        criterion: Optional[StoppingCriterion] = None,
        maxiter: Optional[int] = None,
        precond: str = "mg",
        fused: bool = False,
        reproducible: bool = False,
        mg_levels: int = 4,
        grid: Optional[Tuple[int, int, int]] = None,
    ):
        n, indptr, indices, data = csr_arrays(matrix)
        nx, ny, nz = (int(s) for s in shape)
        if nx * ny * nz != n:
            raise ValueError(
                f"shape {shape} implies {nx * ny * nz} rows, matrix has {n}"
            )
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (n,):
            raise ValueError(f"b must have shape ({n},), got {b.shape}")
        if precond not in HPCG_PRECONDS:
            raise ValueError(
                f"unknown preconditioner {precond!r}; "
                f"expected one of {HPCG_PRECONDS}"
            )
        self.n = n
        self.shape = (nx, ny, nz)
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.b = b
        self.x_start = (
            np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64)
        )
        self.crit = criterion or StoppingCriterion()
        self.maxiter = maxiter if maxiter is not None else self.crit.cap(n)
        self.precond = precond
        self.fused = bool(fused)
        self.reproducible = bool(reproducible)
        self.grid = grid
        if precond == "jacobi":
            diag = np.zeros(n)
            for_rows = np.repeat(np.arange(n), np.diff(indptr))
            on_diag = for_rows == indices
            diag[for_rows[on_diag]] = data[on_diag]
            if (diag == 0).any():
                raise ValueError("Jacobi needs a zero-free diagonal")
            self.inv_diag: Optional[np.ndarray] = 1.0 / diag
        else:
            self.inv_diag = None
        self.mg = (
            MultigridPreconditioner(matrix, self.shape, max_levels=mg_levels)
            if precond == "mg"
            else None
        )

    # ------------------------------------------------------------------ #
    def default_layout(self, nprocs: int) -> Grid3DBlock:
        """Subcube layout at ``nprocs`` ranks.

        The recovery driver calls this to re-factorise the process grid
        after a shrink; an explicit ``grid`` override only applies at the
        rank count it covers.
        """
        grid = self.grid
        if grid is not None and int(np.prod(grid)) != int(nprocs):
            grid = None
        return Grid3DBlock(self.shape, nprocs, grid=grid)

    def _local_csr(self, rows: np.ndarray):
        """Slice the global CSR arrays down to this rank's rows."""
        indptr, indices, data = self.indptr, self.indices, self.data
        counts = (indptr[rows + 1] - indptr[rows]) if rows.size else \
            np.zeros(0, dtype=np.int64)
        local_nnz = int(counts.sum())
        lptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=lptr[1:])
        if rows.size:
            offs = (
                np.repeat(indptr[rows] - lptr[:-1], counts)
                + np.arange(local_nnz, dtype=np.int64)
            )
        else:
            offs = np.zeros(0, dtype=np.int64)
        lrow_ids = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
        return local_nnz, indices[offs], data[offs], lrow_ids

    def __call__(self, rank: int, size: int):
        t_setup = time.perf_counter()
        phase = {"setup": 0.0, "spmv": 0.0, "mg": 0.0, "dot": 0.0}
        layout = Grid3DBlock(self.shape, size, grid=self.grid)
        rows = layout.local_indices_cached(rank)
        local_nnz, lindices, ldata, lrow_ids = self._local_csr(rows)

        x = self.x_start[rows].copy()
        bb = self.b[rows].copy()
        inv_d = self.inv_diag[rows] if self.inv_diag is not None else None

        plan = (
            halo_plan(layout, rank) if self.precond != "mg" and size > 1
            else []
        )
        halo_words = int(sum(e["send_ids"].size for e in plan))
        send_lpos = [
            np.asarray(layout.global_to_local(e["send_ids"]), dtype=np.int64)
            for e in plan
        ]
        crit, maxiter = self.crit, self.maxiter
        phase["setup"] += time.perf_counter() - t_setup

        def matvec(v_full):
            t0 = time.perf_counter()
            out = np.zeros(rows.size)
            np.add.at(out, lrow_ids, ldata * v_full[lindices])
            phase["spmv"] += time.perf_counter() - t0
            return out

        def assemble(blocks):
            full = np.zeros(self.n)
            for rr, blk in enumerate(blocks):
                full[layout.local_indices_cached(rr)] = blk
            return full

        def exchange(v_local):
            """Halo exchange: local block -> full-length scatter buffer."""
            for entry, lpos in zip(plan, send_lpos):
                yield Send(dest=entry["rank"], payload=v_local[lpos],
                           tag=_HALO_TAG)
            buf = np.zeros(self.n)
            buf[rows] = v_local
            for entry in plan:
                vals = yield Recv(source=entry["rank"], tag=_HALO_TAG)
                buf[entry["recv_ids"]] = vals
            return buf

        def reduce_dots(pairs, tag=3):
            """Globally reduce ``len(pairs)`` inner products.

            ``fused`` packs them into one tree; otherwise each gets its
            own.  Slot-wise the combination order is identical, so the two
            schedules agree bitwise at any fixed rank count.
            """
            t0 = time.perf_counter()
            if self.reproducible:
                blocks = [dot_slots(a, b) for a, b in pairs]
                nel = sum(a.size for a, _ in pairs)
                phase["dot"] += time.perf_counter() - t0
                if self.fused:
                    red = yield from spmd.allreduce_vec(
                        rank, size, pack_slots(blocks), tag=tag
                    )
                    out = [render_slots(s)
                           for s in unpack_slots(red, len(pairs))]
                else:
                    out = []
                    for i, blk in enumerate(blocks):
                        red = yield from spmd.allreduce_vec(
                            rank, size, blk, tag=tag + 2 * i
                        )
                        out.append(render_slots(red))
                yield Compute((2.0 + _REPRO_FLOPS) * nel)
                return out
            locals_ = [float(a @ b) for a, b in pairs]
            nel = sum(a.size for a, _ in pairs)
            phase["dot"] += time.perf_counter() - t0
            if self.fused:
                red = yield from spmd.allreduce_vec(
                    rank, size, np.array(locals_), tag=tag
                )
                out = [float(v) for v in red]
            else:
                out = []
                for i, v in enumerate(locals_):
                    red = yield from spmd.allreduce_sum(
                        rank, size, v, tag=tag + 2 * i
                    )
                    out.append(float(red))
            yield Compute(2.0 * nel)
            return out

        def apply_precond(r_local):
            """u = M^-1 r.  Returns (u_local, u_full_or_None)."""
            if self.precond == "none":
                return r_local.copy(), None
            if self.precond == "jacobi":
                u = inv_d * r_local
                yield Compute(float(r_local.size))
                return u, None
            # mg: allgather r, apply the deterministic V-cycle to the full
            # vector on every rank (replicated serialised work), slice
            blocks = yield from spmd.allgather(rank, size, r_local)
            r_full = assemble(blocks)
            t0 = time.perf_counter()
            z_full = self.mg.solve(r_full)
            phase["mg"] += time.perf_counter() - t0
            yield Compute(self.mg.flops_per_apply)
            return z_full[rows], z_full

        def precond_matvec(u_local, u_full):
            """w = A u, via halo exchange unless u is already replicated."""
            if u_full is not None:
                full = u_full
            elif size > 1:
                full = yield from exchange(u_local)
            else:
                full = np.zeros(self.n)
                full[rows] = u_local
            w = matvec(full)
            yield Compute(2.0 * local_nnz)
            return w

        # ---------------- setup ---------------------------------------- #
        if np.any(self.x_start):
            blocks = yield from spmd.allgather(rank, size, x)
            ax = matvec(assemble(blocks))
            yield Compute(2.0 * local_nnz)
            r = bb - ax
        else:
            r = bb.copy()

        u, u_full = yield from apply_precond(r)
        w = yield from precond_matvec(u, u_full)
        gamma, delta, rnorm2, bnorm2 = yield from reduce_dots(
            [(r, u), (w, u), (r, r), (bb, bb)]
        )
        bnorm = float(np.sqrt(bnorm2))
        residuals = [float(np.sqrt(max(0.0, rnorm2)))]
        alphas: List[float] = []
        betas: List[float] = []
        gammas: List[float] = [gamma]

        extras: Dict[str, Any] = {
            "precond": self.precond,
            "fused": self.fused,
            "reproducible": self.reproducible,
            "grid": layout.grid,
            "halo": {
                "neighbors": len(plan),
                "faces": sum(e["kind"] == "face" for e in plan),
                "edges": sum(e["kind"] == "edge" for e in plan),
                "corners": sum(e["kind"] == "corner" for e in plan),
                "words_per_exchange": halo_words,
            },
            "mg_depth": self.mg.depth if self.mg is not None else 0,
            "mg_flops_per_apply": (
                self.mg.flops_per_apply if self.mg is not None else 0.0
            ),
        }

        def finish(converged, iterations):
            extras["alphas"] = alphas
            extras["betas"] = betas
            extras["gammas"] = gammas
            extras["phase_seconds"] = dict(phase)
            return x, residuals, converged, iterations, extras

        if crit.satisfied(residuals[-1], bnorm):
            return finish(True, 0)
        if delta == 0.0:
            return finish(False, 0)
        alpha = gamma / delta
        alphas.append(alpha)
        p = u.copy()
        s = w.copy()

        # ---------------- main loop ------------------------------------ #
        converged = False
        iterations = 0
        for k in range(1, maxiter + 1):
            x += alpha * p
            r -= alpha * s
            yield Compute(4.0 * r.size)
            u, u_full = yield from apply_precond(r)
            w = yield from precond_matvec(u, u_full)
            gamma_new, delta, rnorm2 = yield from reduce_dots(
                [(r, u), (w, u), (r, r)]
            )
            residuals.append(float(np.sqrt(max(0.0, rnorm2))))
            gammas.append(gamma_new)
            iterations = k
            if crit.satisfied(residuals[-1], bnorm):
                converged = True
                break
            beta = gamma_new / gamma
            denom = delta - beta * gamma_new / alpha
            if denom == 0.0:
                break
            alpha = gamma_new / denom
            gamma = gamma_new
            betas.append(beta)
            alphas.append(alpha)
            p = u + beta * p
            s = w + beta * s
            yield Compute(4.0 * r.size)
        return finish(converged, iterations)


class ResilientHPCGProgram(HPCGRankProgram):
    """Fault-tolerant HPCG: checkpoints, audits, ABFT, reliable halo.

    The resilience treatment of
    :class:`~repro.backend.programs.ResilientCGProgram`, applied to the
    subcube-distributed Chronopoulos--Gear recurrence:

    * periodic :class:`~repro.machine.events.Checkpoint` ops snapshot
      ``x``/``r``/``p``/``s`` plus the recurrence scalars per subcube, in
      the same format :func:`repro.backend.solve.reslice_snapshots`
      redistributes, so both ``respawn`` and ``shrink`` recovery work;
    * coordinated sanity audits recompute ``||b - A x||`` from scratch;
      every rank compares the same reduced values, so all roll back to the
      last snapshot (or none do) without extra coordination;
    * with ``abft=True`` every inner product travels as duplicate-sum
      slots and the halo SpMV is checksummed: the reduction carries
      ``sum(A u)`` alongside the per-rank column-checksum contributions
      ``colsum·u`` and ``|colsum|·|u|`` (no rank holds the full operand,
      so the expected value is reduced rather than computed locally);
    * with ``reliable=True`` every collective *and* every face/edge/corner
      halo message rides the stop-and-wait ARQ of
      :mod:`repro.machine.reliable`.  Neighbour pairs order their
      send/recv by rank (lower sends first) so two blocking acknowledged
      sends never face each other.

    Fusion and ``reproducible=True`` compose exactly as in the plain
    program; a fault-free resilient run reproduces the plain trajectory
    bitwise.
    """

    def __init__(
        self,
        matrix,
        b: np.ndarray,
        shape: Tuple[int, int, int],
        x0: Optional[np.ndarray] = None,
        criterion: Optional[StoppingCriterion] = None,
        maxiter: Optional[int] = None,
        precond: str = "mg",
        fused: bool = False,
        reproducible: bool = False,
        mg_levels: int = 4,
        grid: Optional[Tuple[int, int, int]] = None,
        checkpoint_interval: int = 10,
        sanity_interval: int = 5,
        sanity_rtol: float = 1.0e-6,
        max_restarts: int = 4,
        faults: Optional[FaultPlan] = None,
        reliable: bool = False,
        reliable_config: Optional[ReliableConfig] = None,
        abft: bool = False,
        abft_rtol: float = 1.0e-8,
        layout: Optional[Grid3DBlock] = None,
    ):
        super().__init__(
            matrix, b, shape, x0=x0, criterion=criterion, maxiter=maxiter,
            precond=precond, fused=fused, reproducible=reproducible,
            mg_levels=mg_levels, grid=grid,
        )
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if sanity_interval < 1:
            raise ValueError("sanity_interval must be >= 1")
        self.checkpoint_interval = int(checkpoint_interval)
        self.sanity_interval = int(sanity_interval)
        self.sanity_rtol = float(sanity_rtol)
        self.max_restarts = int(max_restarts)
        self.faults = faults
        self.reliable = bool(reliable)
        self.reliable_config = reliable_config
        self.abft = bool(abft)
        self.abft_rtol = float(abft_rtol)
        self.colsum, self.abs_colsum = (
            column_checksums(self.n, self.indices, self.data)
            if self.abft
            else (None, None)
        )
        #: set by the recovery driver after a shrink
        self.layout: Optional[Grid3DBlock] = layout
        #: set by the recovery driver: (iteration, {rank: snapshot})
        self.restart: Optional[Tuple[int, Dict[int, Dict[str, Any]]]] = None

    # ------------------------------------------------------------------ #
    def __call__(self, rank: int, size: int):
        t_setup = time.perf_counter()
        phase = {"setup": 0.0, "spmv": 0.0, "mg": 0.0, "dot": 0.0}
        layout = (
            self.layout
            if isinstance(self.layout, Grid3DBlock)
            and self.layout.nprocs == size
            else self.default_layout(size)
        )
        rows = layout.local_indices_cached(rank)
        local_nnz, lindices, ldata, lrow_ids = self._local_csr(rows)

        bb = self.b[rows].copy()
        inv_d = self.inv_diag[rows] if self.inv_diag is not None else None

        plan = (
            halo_plan(layout, rank) if self.precond != "mg" and size > 1
            else []
        )
        halo_words = int(sum(e["send_ids"].size for e in plan))
        send_lpos = [
            np.asarray(layout.global_to_local(e["send_ids"]), dtype=np.int64)
            for e in plan
        ]
        crit, maxiter = self.crit, self.maxiter
        fplan = self.faults.for_rank(rank) if self.faults is not None else None
        ep = (
            ReliableEndpoint(rank, self.reliable_config)
            if self.reliable
            else None
        )
        csum_rows = self.colsum[rows] if self.abft else None
        acsum_rows = self.abs_colsum[rows] if self.abft else None
        phase["setup"] += time.perf_counter() - t_setup

        def matvec(v_full):
            t0 = time.perf_counter()
            out = np.zeros(rows.size)
            np.add.at(out, lrow_ids, ldata * v_full[lindices])
            phase["spmv"] += time.perf_counter() - t0
            return out

        def assemble(blocks):
            full = np.zeros(self.n)
            for rr, blk in enumerate(blocks):
                full[layout.local_indices_cached(rr)] = blk
            return full

        def allgather(value, tag=7):
            if ep is not None:
                out = yield from rel.allgather(ep, rank, size, value, tag=tag)
            else:
                out = yield from spmd.allgather(rank, size, value, tag=tag)
            return out

        def allreduce_vec(values, tag=3):
            if ep is not None:
                out = yield from rel.allreduce_vec(ep, rank, size, values,
                                                   tag=tag)
            else:
                out = yield from spmd.allreduce_vec(rank, size, values,
                                                    tag=tag)
            return out

        def allreduce_sum(value, tag=3):
            if ep is not None:
                out = yield from rel.allreduce_sum(ep, rank, size, value,
                                                   tag=tag)
            else:
                out = yield from spmd.allreduce_sum(rank, size, value,
                                                    tag=tag)
            return out

        def exchange(v_local):
            """Halo exchange: local block -> full-length scatter buffer.

            Received payloads are shape-checked against the plan so a
            corrupted or misrouted halo message is named by both ranks and
            the face kind (mirroring the ``allreduce_vec`` slot-mismatch
            errors).  Over the reliable transport each neighbour pair
            orders its acknowledged send/recv by rank -- two symmetric
            stop-and-wait sends would deadlock waiting for each other's
            acks.
            """
            buf = np.zeros(self.n)
            buf[rows] = v_local

            def _scatter(entry, vals):
                vals = np.asarray(vals)
                expected = entry["recv_ids"].size
                if vals.shape != (expected,):
                    raise ValueError(
                        f"halo {entry['kind']} mismatch: rank "
                        f"{entry['rank']} sent {vals.shape} to rank {rank}, "
                        f"expected ({expected},)"
                    )
                buf[entry["recv_ids"]] = vals

            if ep is None:
                for entry, lpos in zip(plan, send_lpos):
                    yield Send(dest=entry["rank"], payload=v_local[lpos],
                               tag=_HALO_TAG)
                for entry in plan:
                    vals = yield Recv(source=entry["rank"], tag=_HALO_TAG)
                    _scatter(entry, vals)
                return buf
            for entry, lpos in zip(plan, send_lpos):
                nb, kind = entry["rank"], entry["kind"]
                try:
                    if rank < nb:
                        yield from ep.send(nb, v_local[lpos], tag=_HALO_TAG)
                        vals = yield from ep.recv(nb, tag=_HALO_TAG)
                    else:
                        vals = yield from ep.recv(nb, tag=_HALO_TAG)
                        yield from ep.send(nb, v_local[lpos], tag=_HALO_TAG)
                except RankFailedError as exc:
                    raise RankFailedError(
                        f"halo {kind} exchange between rank {rank} and "
                        f"rank {nb} failed: {exc}",
                        rank=nb,
                    ) from exc
                _scatter(entry, vals)
            return buf

        def reduce_dots(pairs, labels, tag=3, check=None):
            """Reduce inner products, optionally ABFT-hardened.

            With ``abft`` every dot's slots travel duplicated
            (:func:`~repro.backend.abft.decode_dot` exact-equality check)
            and ``check=(w, u)`` appends the halo-SpMV column checksum:
            ``sum(w)`` (duplicated) plus the reduced contributions
            ``colsum·u`` and ``|colsum|·|u|``, verified against each other
            after the reduction.  Fused packs everything into one tree;
            classic gives each dot (and the checksum group) its own.
            """
            t0 = time.perf_counter()
            nel = sum(a.size for a, _ in pairs)
            if self.reproducible:
                groups = []
                for a, b in pairs:
                    blk = dot_slots(a, b)
                    groups.append([blk, blk] if self.abft else [blk])
                if self.abft and check is not None:
                    w_loc, u_loc = check
                    ws = sum_slots(w_loc)
                    cs = dot_slots(csum_rows, u_loc)
                    acs = dot_slots(acsum_rows, np.abs(u_loc))
                    groups.append([ws, ws, cs, cs, acs, acs])
                phase["dot"] += time.perf_counter() - t0
                rendered = []
                if self.fused:
                    flat = [blk for grp in groups for blk in grp]
                    red = yield from allreduce_vec(pack_slots(flat), tag=tag)
                    rendered = [render_slots(s)
                                for s in unpack_slots(red, len(flat))]
                else:
                    for i, grp in enumerate(groups):
                        red = yield from allreduce_vec(
                            pack_slots(grp), tag=tag + 2 * i
                        )
                        rendered.extend(
                            render_slots(s)
                            for s in unpack_slots(red, len(grp))
                        )
                yield Compute((2.0 + _REPRO_FLOPS) * nel)
            else:
                groups = []
                for a, b in pairs:
                    v = float(a @ b)
                    groups.append([v, v] if self.abft else [v])
                if self.abft and check is not None:
                    w_loc, u_loc = check
                    ws = float(w_loc.sum())
                    cs = float(csum_rows @ u_loc)
                    acs = float(acsum_rows @ np.abs(u_loc))
                    groups.append([ws, ws, cs, cs, acs, acs])
                phase["dot"] += time.perf_counter() - t0
                rendered = []
                if self.fused:
                    flat = [v for grp in groups for v in grp]
                    red = yield from allreduce_vec(np.array(flat), tag=tag)
                    rendered = [float(v) for v in red]
                else:
                    for i, grp in enumerate(groups):
                        if len(grp) == 1:
                            red = yield from allreduce_sum(
                                grp[0], tag=tag + 2 * i
                            )
                            rendered.append(float(red))
                        else:
                            red = yield from allreduce_vec(
                                np.array(grp), tag=tag + 2 * i
                            )
                            rendered.extend(float(v) for v in red)
                yield Compute(2.0 * nel)
            out = []
            pos = 0
            for label in labels:
                if self.abft:
                    out.append(
                        decode_dot(np.array(rendered[pos:pos + 2]), label)
                    )
                    pos += 2
                else:
                    out.append(rendered[pos])
                    pos += 1
            if self.abft and check is not None:
                w_total = decode_dot(
                    np.array(rendered[pos:pos + 2]), "sum(A u)"
                )
                cs_total = decode_dot(
                    np.array(rendered[pos + 2:pos + 4]), "colsum·u"
                )
                acs_total = decode_dot(
                    np.array(rendered[pos + 4:pos + 6]), "|colsum|·|u|"
                )
                tol = self.abft_rtol * (abs(acs_total) + 1.0)
                if not np.isfinite(w_total) or abs(w_total - cs_total) > tol:
                    raise AbftChecksumError(
                        f"halo SpMV checksum mismatch: sum(A u) = "
                        f"{w_total!r} but column checksums predict "
                        f"{cs_total!r} (tolerance {tol:.3e})"
                    )
            return out

        def apply_precond(r_local):
            """u = M^-1 r.  Returns (u_local, u_full_or_None)."""
            if self.precond == "none":
                return r_local.copy(), None
            if self.precond == "jacobi":
                u = inv_d * r_local
                yield Compute(float(r_local.size))
                return u, None
            blocks = yield from allgather(r_local)
            r_full = assemble(blocks)
            t0 = time.perf_counter()
            z_full = self.mg.solve(r_full)
            phase["mg"] += time.perf_counter() - t0
            yield Compute(self.mg.flops_per_apply)
            return z_full[rows], z_full

        def precond_matvec(u_local, u_full):
            """w = A u, via halo exchange unless u is already replicated."""
            if u_full is not None:
                full = u_full
            elif size > 1:
                full = yield from exchange(u_local)
            else:
                full = np.zeros(self.n)
                full[rows] = u_local
            w = matvec(full)
            yield Compute(2.0 * local_nnz)
            return w

        rollbacks = 0
        audits_done = 0
        checkpoints_published = 0
        last_snap: Optional[Dict[str, Any]] = None

        def snapshot(k):
            return {
                "k": k,
                "x": x.copy(),
                "r": r.copy(),
                "p": p.copy(),
                "s": s.copy(),
                "gamma": gamma,
                "alpha": alpha,
                "residuals": list(residuals),
                "iterations": iterations,
                "bnorm": bnorm,
                "alphas": list(alphas),
                "betas": list(betas),
                "gammas": list(gammas),
            }

        extras: Dict[str, Any] = {
            "precond": self.precond,
            "fused": self.fused,
            "reproducible": self.reproducible,
            "abft": self.abft,
            "grid": layout.grid,
            "halo": {
                "neighbors": len(plan),
                "faces": sum(e["kind"] == "face" for e in plan),
                "edges": sum(e["kind"] == "edge" for e in plan),
                "corners": sum(e["kind"] == "corner" for e in plan),
                "words_per_exchange": halo_words,
                "reliable": self.reliable,
            },
            "mg_depth": self.mg.depth if self.mg is not None else 0,
            "mg_flops_per_apply": (
                self.mg.flops_per_apply if self.mg is not None else 0.0
            ),
        }

        def finish(converged, iterations):
            extras["alphas"] = alphas
            extras["betas"] = betas
            extras["gammas"] = gammas
            extras["phase_seconds"] = dict(phase)
            extras["resilience"] = {
                "rollbacks": rollbacks,
                "audits": audits_done,
                "checkpoints_published": checkpoints_published,
                "restarted_from": restarted_from,
                "telemetry": dict(ep.telemetry) if ep is not None else {},
                "fault_stats": (
                    fplan.stats.as_dict() if fplan is not None else {}
                ),
            }
            return x, residuals, converged, iterations, extras

        # ---------------- initial state (fresh or restarted) ----------- #
        if self.restart is not None:
            k0, snaps = self.restart
            snap = snaps[rank]
            if snap["k"] != k0:  # pragma: no cover - driver invariant
                raise ValueError("restart snapshot iteration mismatch")
            x = snap["x"].copy()
            r = snap["r"].copy()
            p = snap["p"].copy()
            s = snap["s"].copy()
            gamma, alpha = snap["gamma"], snap["alpha"]
            residuals = list(snap["residuals"])
            alphas = list(snap.get("alphas", []))
            betas = list(snap.get("betas", []))
            gammas = list(snap.get("gammas", []))
            iterations = snap["iterations"]
            bnorm = snap["bnorm"]
            k = k0
            last_snap = snapshot(k)
            restarted_from: Optional[int] = k0
        else:
            x = self.x_start[rows].copy()
            if np.any(self.x_start):
                blocks = yield from allgather(x)
                ax = matvec(assemble(blocks))
                yield Compute(2.0 * local_nnz)
                r = bb - ax
            else:
                r = bb.copy()
            u, u_full = yield from apply_precond(r)
            w = yield from precond_matvec(u, u_full)
            gamma, delta, rnorm2, bnorm2 = yield from reduce_dots(
                [(r, u), (w, u), (r, r), (bb, bb)],
                ("r·u", "w·u", "r·r", "b·b"),
                check=(w, u),
            )
            bnorm = float(np.sqrt(bnorm2))
            residuals = [float(np.sqrt(max(0.0, rnorm2)))]
            alphas = []
            betas = []
            gammas = [gamma]
            iterations = 0
            k = 0
            restarted_from = None
            if crit.satisfied(residuals[-1], bnorm):
                alpha = 0.0
                p = u.copy()
                s = w.copy()
                return finish(True, 0)
            if delta == 0.0:
                alpha = 0.0
                p = u.copy()
                s = w.copy()
                return finish(False, 0)
            alpha = gamma / delta
            alphas.append(alpha)
            p = u.copy()
            s = w.copy()
            last_snap = snapshot(0)
            yield Compute(4.0 * x.size)  # checkpoint copy cost (x, r, p, s)
            yield Checkpoint(iteration=0, payload=last_snap)
            checkpoints_published += 1

        # ---------------- main loop ------------------------------------ #
        converged = False
        while k < maxiter:
            k += 1
            if fplan is not None:
                corr = fplan.take_state_corruption(k, rank)
                if corr is not None:
                    target = {"x": x, "r": r, "p": p}[corr.target]
                    if target.size:
                        i = fplan.draw_index(target.size)
                        target[i] += (1.0 + abs(target[i])) * corr.scale
            x += alpha * p
            r -= alpha * s
            yield Compute(4.0 * r.size)
            u, u_full = yield from apply_precond(r)
            w = yield from precond_matvec(u, u_full)
            gamma_new, delta, rnorm2 = yield from reduce_dots(
                [(r, u), (w, u), (r, r)],
                ("r·u", "w·u", "r·r"),
                check=(w, u),
            )
            residuals.append(float(np.sqrt(max(0.0, rnorm2))))
            gammas.append(gamma_new)
            iterations = k
            stopping = crit.satisfied(residuals[-1], bnorm)
            need_ckpt = k % self.checkpoint_interval == 0
            if stopping or need_ckpt or k % self.sanity_interval == 0:
                # sanity audit: recompute ||b - A x|| from scratch; every
                # rank sees the same reduced values, so all roll back (or
                # none do) without further coordination
                audits_done += 1
                x_blocks = yield from allgather(x, tag=21)
                ax = matvec(assemble(x_blocks))
                yield Compute(2.0 * local_nnz)
                d = bb - ax
                (true2,) = yield from reduce_dots([(d, d)], ("audit",),
                                                  tag=23)
                yield Compute(2.0 * d.size)
                true_norm = float(np.sqrt(max(0.0, true2)))
                if abs(true_norm - residuals[-1]) > self.sanity_rtol * max(
                    bnorm, 1.0e-300
                ):
                    rollbacks += 1
                    if rollbacks > self.max_restarts:
                        raise RecoveryExhaustedError(
                            f"rank {rank}: sanity audit failed at iteration "
                            f"{k} (recurrence {residuals[-1]:.3e} vs true "
                            f"{true_norm:.3e}) after "
                            f"{rollbacks - 1} rollbacks",
                            attempts=[{
                                "outcome": "audit_rollback_exhausted",
                                "rank": rank,
                                "iteration": k,
                                "rollbacks": rollbacks - 1,
                            }],
                        )
                    snap = last_snap
                    x = snap["x"].copy()
                    r = snap["r"].copy()
                    p = snap["p"].copy()
                    s = snap["s"].copy()
                    gamma, alpha = snap["gamma"], snap["alpha"]
                    residuals = list(snap["residuals"])
                    alphas = list(snap["alphas"])
                    betas = list(snap["betas"])
                    gammas = list(snap["gammas"])
                    iterations = snap["iterations"]
                    k = snap["k"]
                    yield Compute(4.0 * x.size)  # restore copy cost
                    continue
            if stopping:
                converged = True
                break
            beta = gamma_new / gamma
            denom = delta - beta * gamma_new / alpha
            if denom == 0.0:
                break
            alpha = gamma_new / denom
            gamma = gamma_new
            betas.append(beta)
            alphas.append(alpha)
            p = u + beta * p
            s = w + beta * s
            yield Compute(4.0 * r.size)
            if need_ckpt:
                last_snap = snapshot(k)
                yield Compute(4.0 * x.size)  # checkpoint copy cost
                yield Checkpoint(iteration=k, payload=last_snap)
                checkpoints_published += 1
        return finish(converged, iterations)
