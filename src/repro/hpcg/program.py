"""Backend-portable HPCG rank program: 3-D halo exchange + reproducible CG.

:class:`HPCGRankProgram` runs preconditioned conjugate gradients on a
:func:`~repro.sparse.generators.stencil27` system distributed over the 3-D
subcube layout of :class:`~repro.hpf.distribution.Grid3DBlock`.  Like the
row-block programs it is a picklable factory -- ``program(rank, size)``
yields the rank's generator -- and runs identically on the simulated and
process backends.

Design choices that make the bitwise-reproducibility pin possible:

* **one recurrence, two communication schedules.**  Genuinely different
  update orders (classic two-reduction CG vs the Chronopoulos--Gear
  recurrence) can never be bitwise equal, exact dots or not.  This program
  therefore always runs the *preconditioned Chronopoulos--Gear* recurrence,
  whose three per-iteration inner products (``gamma = r.u``,
  ``delta = w.u``, ``rnorm2 = r.r``) are all available together after the
  mat-vec; ``fused`` only chooses whether they travel in three separate
  reduction trees (``classic``) or one packed
  :func:`~repro.machine.spmd.allreduce_vec` (``fused``).  Slot-wise, both
  schedules perform the identical additions in the identical binomial-tree
  order, so classic and fused agree bitwise at any fixed rank count -- and
  with ``reproducible=True`` (exact superaccumulator reductions) across
  rank counts too.

* **halo exchange vs replicated preconditioning.**  With a local
  preconditioner (``none``/``jacobi``) the mat-vec operand is only known
  locally, so ranks exchange the faces, edges and corners of their subcube
  with up to 26 neighbours; received values land in a full-length scatter
  buffer so the CSR accumulation order -- and hence every mat-vec bit -- is
  independent of the partition.  With ``mg`` the residual is allgathered
  and every rank applies the deterministic V-cycle to the *full* vector
  (the serialised-preconditioner treatment of
  :func:`repro.core.pcg.hpf_pcg`, charged at ``flops_per_apply``), so the
  mat-vec needs no halo at all.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..backend.programs import csr_arrays
from ..backend.reproducible import (
    dot_slots,
    pack_slots,
    render_slots,
    unpack_slots,
)
from ..core.stopping import StoppingCriterion
from ..hpf.distribution import Grid3DBlock
from ..machine import spmd
from ..machine.events import Compute, Recv, Send
from .mg import MultigridPreconditioner

__all__ = ["HPCGRankProgram", "HPCG_PRECONDS", "halo_plan"]

HPCG_PRECONDS = ("none", "jacobi", "mg")

#: tag of the halo point-to-point exchange (clear of the collectives' tags)
_HALO_TAG = 31

#: modelled per-element overhead of splat + render on a reproducible dot
_REPRO_FLOPS = 8.0


def _box_intersect(a, b):
    """Intersection of two ``((xlo,xhi),(ylo,yhi),(zlo,zhi))`` boxes."""
    out = []
    for (alo, ahi), (blo, bhi) in zip(a, b):
        lo, hi = max(alo, blo), min(ahi, bhi)
        if lo >= hi:
            return None
        out.append((lo, hi))
    return tuple(out)


def _box_expand(box, shape):
    """Grow a box by one cell per face, clipped to the global grid."""
    return tuple(
        (max(0, lo - 1), min(dim, hi + 1))
        for (lo, hi), dim in zip(box, shape)
    )


def _box_ids(box, shape) -> np.ndarray:
    """Global ids inside a box, in global row-major (z, y, x) order."""
    nx, ny, nz = shape
    (xlo, xhi), (ylo, yhi), (zlo, zhi) = box
    ids = np.arange(nx * ny * nz, dtype=np.int64).reshape(nz, ny, nx)
    return ids[zlo:zhi, ylo:yhi, xlo:xhi].ravel()


def halo_plan(layout: Grid3DBlock, rank: int) -> List[Dict[str, Any]]:
    """Per-neighbour halo schedule for ``rank`` under ``layout``.

    Each entry names the neighbour rank, its kind (``face``/``edge``/
    ``corner`` by the number of process-grid axes that differ), the global
    ids this rank must *send* (its own cells the neighbour's stencil
    reads) and the global ids it will *receive* (the neighbour's cells its
    own stencil reads).  Both sides compute the same plan from the layout
    alone, so no negotiation messages are needed.
    """
    px, py, pz = layout.grid
    rx, ry, rz = layout.coords(rank)
    my_box = layout.local_box(rank)
    shape = layout.shape
    plan: List[Dict[str, Any]] = []
    for dz in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                if (dx, dy, dz) == (0, 0, 0):
                    continue
                cx, cy, cz = rx + dx, ry + dy, rz + dz
                if not (0 <= cx < px and 0 <= cy < py and 0 <= cz < pz):
                    continue
                nb = layout.rank_of(cx, cy, cz)
                nb_box = layout.local_box(nb)
                send_box = _box_intersect(my_box, _box_expand(nb_box, shape))
                recv_box = _box_intersect(_box_expand(my_box, shape), nb_box)
                if send_box is None and recv_box is None:
                    continue
                if (send_box is None) != (recv_box is None):
                    raise RuntimeError(
                        f"asymmetric halo between ranks {rank} and {nb}"
                    )
                kind = ("face", "edge", "corner")[
                    abs(dx) + abs(dy) + abs(dz) - 1
                ]
                plan.append({
                    "rank": nb,
                    "kind": kind,
                    "send_ids": _box_ids(send_box, shape),
                    "recv_ids": _box_ids(recv_box, shape),
                })
    return plan


class HPCGRankProgram:
    """Preconditioned CG on a 3-D 27-point stencil, subcube-distributed.

    Parameters
    ----------
    matrix, b:
        The :func:`stencil27` system (CSR-convertible) and right-hand side.
    shape:
        Grid dimensions ``(nx, ny, nz)`` with ``nx*ny*nz`` matrix rows.
    precond:
        ``"none"``, ``"jacobi"`` (local diagonal scaling) or ``"mg"``
        (replicated geometric V-cycle).
    fused:
        Pack the three per-iteration inner products into one
        ``allreduce_vec`` instead of three separate trees.  Numerics are
        identical either way (see module docstring).
    reproducible:
        Ride every inner product on the fixed-point superaccumulator of
        :mod:`repro.backend.reproducible`: dots and norms become bitwise
        invariant to rank count, topology, backend and fusion, at the cost
        of wider reduction payloads.

    Each rank returns ``(x_block, residuals, converged, iterations,
    extras)`` where ``extras`` carries the per-iteration scalar trajectory
    (``alphas``/``betas``/``gammas`` -- the bitwise pin checks these), halo
    statistics and per-phase compute seconds.
    """

    def __init__(
        self,
        matrix,
        b: np.ndarray,
        shape: Tuple[int, int, int],
        x0: Optional[np.ndarray] = None,
        criterion: Optional[StoppingCriterion] = None,
        maxiter: Optional[int] = None,
        precond: str = "mg",
        fused: bool = False,
        reproducible: bool = False,
        mg_levels: int = 4,
        grid: Optional[Tuple[int, int, int]] = None,
    ):
        n, indptr, indices, data = csr_arrays(matrix)
        nx, ny, nz = (int(s) for s in shape)
        if nx * ny * nz != n:
            raise ValueError(
                f"shape {shape} implies {nx * ny * nz} rows, matrix has {n}"
            )
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (n,):
            raise ValueError(f"b must have shape ({n},), got {b.shape}")
        if precond not in HPCG_PRECONDS:
            raise ValueError(
                f"unknown preconditioner {precond!r}; "
                f"expected one of {HPCG_PRECONDS}"
            )
        self.n = n
        self.shape = (nx, ny, nz)
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.b = b
        self.x_start = (
            np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64)
        )
        self.crit = criterion or StoppingCriterion()
        self.maxiter = maxiter if maxiter is not None else self.crit.cap(n)
        self.precond = precond
        self.fused = bool(fused)
        self.reproducible = bool(reproducible)
        self.grid = grid
        if precond == "jacobi":
            diag = np.zeros(n)
            for_rows = np.repeat(np.arange(n), np.diff(indptr))
            on_diag = for_rows == indices
            diag[for_rows[on_diag]] = data[on_diag]
            if (diag == 0).any():
                raise ValueError("Jacobi needs a zero-free diagonal")
            self.inv_diag: Optional[np.ndarray] = 1.0 / diag
        else:
            self.inv_diag = None
        self.mg = (
            MultigridPreconditioner(matrix, self.shape, max_levels=mg_levels)
            if precond == "mg"
            else None
        )

    # ------------------------------------------------------------------ #
    def __call__(self, rank: int, size: int):
        t_setup = time.perf_counter()
        phase = {"setup": 0.0, "spmv": 0.0, "mg": 0.0, "dot": 0.0}
        layout = Grid3DBlock(self.shape, size, grid=self.grid)
        rows = layout.local_indices_cached(rank)
        indptr, indices, data = self.indptr, self.indices, self.data
        counts = (indptr[rows + 1] - indptr[rows]) if rows.size else \
            np.zeros(0, dtype=np.int64)
        local_nnz = int(counts.sum())
        lptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=lptr[1:])
        if rows.size:
            offs = (
                np.repeat(indptr[rows] - lptr[:-1], counts)
                + np.arange(local_nnz, dtype=np.int64)
            )
        else:
            offs = np.zeros(0, dtype=np.int64)
        lindices = indices[offs]
        ldata = data[offs]
        lrow_ids = np.repeat(np.arange(rows.size, dtype=np.int64), counts)

        x = self.x_start[rows].copy()
        bb = self.b[rows].copy()
        inv_d = self.inv_diag[rows] if self.inv_diag is not None else None

        plan = (
            halo_plan(layout, rank) if self.precond != "mg" and size > 1
            else []
        )
        halo_words = int(sum(e["send_ids"].size for e in plan))
        send_lpos = [
            np.asarray(layout.global_to_local(e["send_ids"]), dtype=np.int64)
            for e in plan
        ]
        crit, maxiter = self.crit, self.maxiter
        phase["setup"] += time.perf_counter() - t_setup

        def matvec(v_full):
            t0 = time.perf_counter()
            out = np.zeros(rows.size)
            np.add.at(out, lrow_ids, ldata * v_full[lindices])
            phase["spmv"] += time.perf_counter() - t0
            return out

        def assemble(blocks):
            full = np.zeros(self.n)
            for rr, blk in enumerate(blocks):
                full[layout.local_indices_cached(rr)] = blk
            return full

        def exchange(v_local):
            """Halo exchange: local block -> full-length scatter buffer."""
            for entry, lpos in zip(plan, send_lpos):
                yield Send(dest=entry["rank"], payload=v_local[lpos],
                           tag=_HALO_TAG)
            buf = np.zeros(self.n)
            buf[rows] = v_local
            for entry in plan:
                vals = yield Recv(source=entry["rank"], tag=_HALO_TAG)
                buf[entry["recv_ids"]] = vals
            return buf

        def reduce_dots(pairs, tag=3):
            """Globally reduce ``len(pairs)`` inner products.

            ``fused`` packs them into one tree; otherwise each gets its
            own.  Slot-wise the combination order is identical, so the two
            schedules agree bitwise at any fixed rank count.
            """
            t0 = time.perf_counter()
            if self.reproducible:
                blocks = [dot_slots(a, b) for a, b in pairs]
                nel = sum(a.size for a, _ in pairs)
                phase["dot"] += time.perf_counter() - t0
                if self.fused:
                    red = yield from spmd.allreduce_vec(
                        rank, size, pack_slots(blocks), tag=tag
                    )
                    out = [render_slots(s)
                           for s in unpack_slots(red, len(pairs))]
                else:
                    out = []
                    for i, blk in enumerate(blocks):
                        red = yield from spmd.allreduce_vec(
                            rank, size, blk, tag=tag + 2 * i
                        )
                        out.append(render_slots(red))
                yield Compute((2.0 + _REPRO_FLOPS) * nel)
                return out
            locals_ = [float(a @ b) for a, b in pairs]
            nel = sum(a.size for a, _ in pairs)
            phase["dot"] += time.perf_counter() - t0
            if self.fused:
                red = yield from spmd.allreduce_vec(
                    rank, size, np.array(locals_), tag=tag
                )
                out = [float(v) for v in red]
            else:
                out = []
                for i, v in enumerate(locals_):
                    red = yield from spmd.allreduce_sum(
                        rank, size, v, tag=tag + 2 * i
                    )
                    out.append(float(red))
            yield Compute(2.0 * nel)
            return out

        def apply_precond(r_local):
            """u = M^-1 r.  Returns (u_local, u_full_or_None)."""
            if self.precond == "none":
                return r_local.copy(), None
            if self.precond == "jacobi":
                u = inv_d * r_local
                yield Compute(float(r_local.size))
                return u, None
            # mg: allgather r, apply the deterministic V-cycle to the full
            # vector on every rank (replicated serialised work), slice
            blocks = yield from spmd.allgather(rank, size, r_local)
            r_full = assemble(blocks)
            t0 = time.perf_counter()
            z_full = self.mg.solve(r_full)
            phase["mg"] += time.perf_counter() - t0
            yield Compute(self.mg.flops_per_apply)
            return z_full[rows], z_full

        def precond_matvec(u_local, u_full):
            """w = A u, via halo exchange unless u is already replicated."""
            if u_full is not None:
                full = u_full
            elif size > 1:
                full = yield from exchange(u_local)
            else:
                full = np.zeros(self.n)
                full[rows] = u_local
            w = matvec(full)
            yield Compute(2.0 * local_nnz)
            return w

        # ---------------- setup ---------------------------------------- #
        if np.any(self.x_start):
            blocks = yield from spmd.allgather(rank, size, x)
            ax = matvec(assemble(blocks))
            yield Compute(2.0 * local_nnz)
            r = bb - ax
        else:
            r = bb.copy()

        u, u_full = yield from apply_precond(r)
        w = yield from precond_matvec(u, u_full)
        gamma, delta, rnorm2, bnorm2 = yield from reduce_dots(
            [(r, u), (w, u), (r, r), (bb, bb)]
        )
        bnorm = float(np.sqrt(bnorm2))
        residuals = [float(np.sqrt(max(0.0, rnorm2)))]
        alphas: List[float] = []
        betas: List[float] = []
        gammas: List[float] = [gamma]

        extras: Dict[str, Any] = {
            "precond": self.precond,
            "fused": self.fused,
            "reproducible": self.reproducible,
            "grid": layout.grid,
            "halo": {
                "neighbors": len(plan),
                "faces": sum(e["kind"] == "face" for e in plan),
                "edges": sum(e["kind"] == "edge" for e in plan),
                "corners": sum(e["kind"] == "corner" for e in plan),
                "words_per_exchange": halo_words,
            },
            "mg_depth": self.mg.depth if self.mg is not None else 0,
            "mg_flops_per_apply": (
                self.mg.flops_per_apply if self.mg is not None else 0.0
            ),
        }

        def finish(converged, iterations):
            extras["alphas"] = alphas
            extras["betas"] = betas
            extras["gammas"] = gammas
            extras["phase_seconds"] = dict(phase)
            return x, residuals, converged, iterations, extras

        if crit.satisfied(residuals[-1], bnorm):
            return finish(True, 0)
        if delta == 0.0:
            return finish(False, 0)
        alpha = gamma / delta
        alphas.append(alpha)
        p = u.copy()
        s = w.copy()

        # ---------------- main loop ------------------------------------ #
        converged = False
        iterations = 0
        for k in range(1, maxiter + 1):
            x += alpha * p
            r -= alpha * s
            yield Compute(4.0 * r.size)
            u, u_full = yield from apply_precond(r)
            w = yield from precond_matvec(u, u_full)
            gamma_new, delta, rnorm2 = yield from reduce_dots(
                [(r, u), (w, u), (r, r)]
            )
            residuals.append(float(np.sqrt(max(0.0, rnorm2))))
            gammas.append(gamma_new)
            iterations = k
            if crit.satisfied(residuals[-1], bnorm):
                converged = True
                break
            beta = gamma_new / gamma
            denom = delta - beta * gamma_new / alpha
            if denom == 0.0:
                break
            alpha = gamma_new / denom
            gamma = gamma_new
            betas.append(beta)
            alphas.append(alpha)
            p = u + beta * p
            s = w + beta * s
            yield Compute(4.0 * r.size)
        return finish(converged, iterations)
