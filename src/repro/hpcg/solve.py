"""End-to-end HPCG driver: build, run on a backend, assemble the result.

:func:`hpcg_solve` is the HPCG analogue of
:func:`repro.backend.solve.backend_solve`: it distributes a 27-point
stencil system over a 3-D process grid, runs
:class:`~repro.hpcg.program.HPCGRankProgram` on the simulated or process
backend, and assembles a standard
:class:`~repro.core.result.SolveResult` -- so reporting, benchmarks and
the chaos harness treat an HPCG solve exactly like any other backend
solve.  The only assembly difference from the row-block path is the
gather: subcube blocks scatter back into the global vector through the
:class:`~repro.hpf.distribution.Grid3DBlock` index map rather than by
concatenation.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..backend.solve import make_backend
from ..core.result import ConvergenceHistory, SolveResult
from ..core.stopping import StoppingCriterion
from ..hpf.distribution import Grid3DBlock
from ..sparse.generators import rhs_for_solution, stencil27
from .program import HPCGRankProgram

__all__ = ["hpcg_solve", "assemble_hpcg_result"]


def assemble_hpcg_result(run, n: int, layout: Grid3DBlock) -> SolveResult:
    """Build a :class:`SolveResult` from an HPCG backend run.

    Per-rank results follow the HPCG convention ``(x_block, residuals,
    converged, iterations, extras)``; blocks land in the global vector via
    the subcube layout's index map.  The rank-0 ``extras`` (scalar
    trajectory, halo stats, phase timings) are merged into
    ``SolveResult.extras``.
    """
    x = np.zeros(n)
    for rank, res in enumerate(run.results):
        x[layout.local_indices_cached(rank)] = res[0]
    residuals, converged, iterations = (
        run.results[0][1],
        run.results[0][2],
        run.results[0][3],
    )
    history = ConvergenceHistory()
    for rnorm in residuals:
        history.append(rnorm)
    flops = run.stats.flops_per_rank
    mean_flops = flops.mean() if flops.size else 0.0
    extras = {
        "backend": run.backend,
        "nprocs": run.nprocs,
        "timings": dict(run.timings),
        "per_rank": [dict(p) for p in run.per_rank],
        "flops_per_rank": flops,
        "load_imbalance": float(flops.max() / mean_flops) if mean_flops else 1.0,
        "hpcg": dict(run.results[0][4]),
    }
    return SolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        history=history,
        solver="hpcg",
        strategy="spmd_message_passing",
        machine_elapsed=run.elapsed,
        comm={
            "messages": run.stats.total_messages,
            "words": run.stats.total_words,
            "comm_time": run.stats.comm_time,
            "flops": run.stats.total_flops,
        },
        extras=extras,
    )


def hpcg_solve(
    shape: Union[int, Tuple[int, int, int]],
    backend: str = "simulated",
    nprocs: int = 4,
    precond: str = "mg",
    fused: bool = False,
    reproducible: bool = False,
    b: Optional[np.ndarray] = None,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
    maxiter: Optional[int] = None,
    mg_levels: int = 4,
    grid: Optional[Tuple[int, int, int]] = None,
    matrix=None,
    **backend_kwargs,
) -> SolveResult:
    """Solve a 27-point stencil system on an execution backend.

    Parameters
    ----------
    shape:
        Grid dimensions ``(nx, ny, nz)``, or a single int for a cube.
    backend, nprocs:
        Execution backend name (``"simulated"``/``"process"``) or instance,
        and rank count; extra keyword arguments go to the backend
        constructor.
    precond, fused, reproducible, mg_levels:
        Forwarded to :class:`~repro.hpcg.program.HPCGRankProgram`.
    b:
        Right-hand side; defaults to the RHS whose exact solution is all
        ones (the HPCG convention, via :func:`rhs_for_solution`).
    matrix:
        Operator override for testing; defaults to ``stencil27(*shape)``.
    grid:
        Process-grid override ``(px, py, pz)``; defaults to the most
        cubic factorisation of ``nprocs``.
    """
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),) * 3
    nx, ny, nz = (int(s) for s in shape)
    shape = (nx, ny, nz)
    if matrix is None:
        matrix = stencil27(nx, ny, nz)
    if b is None:
        b = rhs_for_solution(matrix, np.ones(matrix.nrows))
    program = HPCGRankProgram(
        matrix,
        b,
        shape,
        x0=x0,
        criterion=criterion,
        maxiter=maxiter,
        precond=precond,
        fused=fused,
        reproducible=reproducible,
        mg_levels=mg_levels,
        grid=grid,
    )
    be = make_backend(backend, **backend_kwargs)
    run = be.run(program, nprocs)
    layout = Grid3DBlock(shape, nprocs, grid=grid)
    return assemble_hpcg_result(run, matrix.nrows, layout)
