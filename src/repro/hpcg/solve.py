"""End-to-end HPCG driver: build, run on a backend, assemble the result.

:func:`hpcg_solve` is the HPCG analogue of
:func:`repro.backend.solve.backend_solve`: it distributes a 27-point
stencil system over a 3-D process grid, runs
:class:`~repro.hpcg.program.HPCGRankProgram` on the simulated or process
backend, and assembles a standard
:class:`~repro.core.result.SolveResult` -- so reporting, benchmarks and
the chaos harness treat an HPCG solve exactly like any other backend
solve.  The only assembly difference from the row-block path is the
gather: subcube blocks scatter back into the global vector through the
:class:`~repro.hpf.distribution.Grid3DBlock` index map rather than by
concatenation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..backend.faulty import FaultInjectingProgram, SlowdownProgram
from ..backend.process import ProcessBackend
from ..backend.solve import make_backend, run_with_recovery
from ..core.resilience import ResilienceConfig, latest_complete_checkpoint
from ..core.result import ConvergenceHistory, SolveResult
from ..core.stopping import StoppingCriterion
from ..hpf.distribution import Grid3DBlock
from ..machine.faults import FaultPlan
from ..sparse.generators import rhs_for_solution, stencil27
from .program import HPCGRankProgram, ResilientHPCGProgram

__all__ = ["hpcg_solve", "assemble_hpcg_result"]


def assemble_hpcg_result(run, n: int, layout: Grid3DBlock) -> SolveResult:
    """Build a :class:`SolveResult` from an HPCG backend run.

    Per-rank results follow the HPCG convention ``(x_block, residuals,
    converged, iterations, extras)``; blocks land in the global vector via
    the subcube layout's index map.  The rank-0 ``extras`` (scalar
    trajectory, halo stats, phase timings) are merged into
    ``SolveResult.extras``.
    """
    x = np.zeros(n)
    for rank, res in enumerate(run.results):
        x[layout.local_indices_cached(rank)] = res[0]
    residuals, converged, iterations = (
        run.results[0][1],
        run.results[0][2],
        run.results[0][3],
    )
    history = ConvergenceHistory()
    for rnorm in residuals:
        history.append(rnorm)
    flops = run.stats.flops_per_rank
    mean_flops = flops.mean() if flops.size else 0.0
    extras = {
        "backend": run.backend,
        "nprocs": run.nprocs,
        "timings": dict(run.timings),
        "per_rank": [dict(p) for p in run.per_rank],
        "flops_per_rank": flops,
        "load_imbalance": float(flops.max() / mean_flops) if mean_flops else 1.0,
        "hpcg": dict(run.results[0][4]),
    }
    return SolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        history=history,
        solver="hpcg",
        strategy="spmd_message_passing",
        machine_elapsed=run.elapsed,
        comm={
            "messages": run.stats.total_messages,
            "words": run.stats.total_words,
            "comm_time": run.stats.comm_time,
            "flops": run.stats.total_flops,
        },
        extras=extras,
    )


def hpcg_solve(
    shape: Union[int, Tuple[int, int, int]],
    backend: str = "simulated",
    nprocs: int = 4,
    precond: str = "mg",
    fused: bool = False,
    reproducible: bool = False,
    b: Optional[np.ndarray] = None,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
    maxiter: Optional[int] = None,
    mg_levels: int = 4,
    grid: Optional[Tuple[int, int, int]] = None,
    matrix=None,
    faults: Optional[FaultPlan] = None,
    resilience: Optional[ResilienceConfig] = None,
    policy: str = "respawn",
    min_ranks: int = 1,
    abft: bool = False,
    store: Optional[Dict[int, Dict[int, Any]]] = None,
    **backend_kwargs,
) -> SolveResult:
    """Solve a 27-point stencil system on an execution backend.

    Parameters
    ----------
    shape:
        Grid dimensions ``(nx, ny, nz)``, or a single int for a cube.
    backend, nprocs:
        Execution backend name (``"simulated"``/``"process"``) or instance,
        and rank count; extra keyword arguments go to the backend
        constructor.
    precond, fused, reproducible, mg_levels:
        Forwarded to :class:`~repro.hpcg.program.HPCGRankProgram`.
    b:
        Right-hand side; defaults to the RHS whose exact solution is all
        ones (the HPCG convention, via :func:`rhs_for_solution`).
    matrix:
        Operator override for testing; defaults to ``stencil27(*shape)``.
    grid:
        Process-grid override ``(px, py, pz)``; defaults to the most
        cubic factorisation of ``nprocs``.
    faults, resilience, policy, min_ranks, abft, store:
        Select the fault-tolerant path: the solve runs
        :class:`~repro.hpcg.program.ResilientHPCGProgram` under
        :func:`~repro.backend.solve.run_with_recovery`, with the same
        plan split as :func:`~repro.backend.solve.backend_solve`
        (message faults at the Comm boundary, state corruption inside
        the program, crashes/slowdowns in the substrate).  ``policy``
        may be ``"respawn"`` or ``"shrink"`` (the 3-D grid re-factorises
        via :func:`~repro.hpf.distribution.choose_grid3d` on a shrink).
        ``abft=True`` duplicates every reduced dot and checksums the
        halo SpMV.  ``store`` supplies the checkpoint store; a
        :class:`~repro.backend.store.DurableCheckpointStore` holding a
        complete checkpoint from a killed driver makes the solve resume
        there instead of from scratch.
    """
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),) * 3
    nx, ny, nz = (int(s) for s in shape)
    shape = (nx, ny, nz)
    if matrix is None:
        matrix = stencil27(nx, ny, nz)
    if b is None:
        b = rhs_for_solution(matrix, np.ones(matrix.nrows))
    plain = (
        faults is None and resilience is None and policy == "respawn"
        and not abft and store is None
    )
    if plain:
        program = HPCGRankProgram(
            matrix,
            b,
            shape,
            x0=x0,
            criterion=criterion,
            maxiter=maxiter,
            precond=precond,
            fused=fused,
            reproducible=reproducible,
            mg_levels=mg_levels,
            grid=grid,
        )
        be = make_backend(backend, **backend_kwargs)
        run = be.run(program, nprocs)
        layout = Grid3DBlock(shape, nprocs, grid=grid)
        return assemble_hpcg_result(run, matrix.nrows, layout)

    if policy not in ("respawn", "shrink"):
        raise ValueError(
            f"hpcg recovery supports the 'respawn' and 'shrink' policies, "
            f"not {policy!r} (rebalancing would break the subcube halo)"
        )
    cfg = resilience or ResilienceConfig()
    plan = faults.clone() if faults is not None else None
    message_faults = plan is not None and plan.message_faults_enabled
    program = ResilientHPCGProgram(
        matrix,
        b,
        shape,
        x0=x0,
        criterion=criterion,
        maxiter=maxiter,
        precond=precond,
        fused=fused,
        reproducible=reproducible,
        mg_levels=mg_levels,
        grid=grid,
        checkpoint_interval=cfg.checkpoint_interval,
        sanity_interval=cfg.sanity_interval,
        sanity_rtol=cfg.sanity_rtol,
        max_restarts=cfg.max_restarts,
        faults=plan,  # state corruptions; rank-local derivation inside
        reliable=message_faults,
        reliable_config=cfg.reliable,
        abft=abft,
    )
    runnable = (
        FaultInjectingProgram(program, plan) if message_faults else program
    )
    substrate_share = plan.substrate_plan() if plan is not None else None
    if isinstance(backend, str):
        kwargs: Dict[str, Any] = dict(backend_kwargs)
        kwargs["faults"] = substrate_share
        be = make_backend(backend, **kwargs)
    else:
        be = backend
    if (
        isinstance(be, ProcessBackend)
        and plan is not None
        and plan.slowdown_schedule()
    ):
        runnable = SlowdownProgram(runnable, plan.slowdown_schedule())
    store = {} if store is None else store
    latest = latest_complete_checkpoint(store, nprocs)
    if latest is not None:
        # a durable store outlives the driver: resume from the newest
        # complete checkpoint the previous (killed) process published
        program.restart = latest
    run = run_with_recovery(
        be, runnable, nprocs,
        max_restarts=cfg.max_restarts,
        store=store, policy=policy, min_ranks=min_ranks,
    )
    n_final = len(run.results)
    layout = (
        program.layout
        if isinstance(program.layout, Grid3DBlock)
        and program.layout.nprocs == n_final
        else program.default_layout(n_final)
    )
    result = assemble_hpcg_result(run, matrix.nrows, layout)
    result.extras["recovery"] = dict(run.recovery)
    hpcg_extras = run.results[0][4] if run.results else {}
    result.extras["resilience"] = dict(hpcg_extras.get("resilience", {}))
    injected: Dict[str, Any] = {}
    for res in run.results:
        per_rank = (res[4] or {}).get("injected_faults") or {}
        for key, value in per_rank.items():
            if isinstance(value, (int, float)):
                injected[key] = injected.get(key, 0) + value
            else:
                injected.setdefault(key, []).extend(value)
    result.extras["injected_faults"] = injected
    return result
