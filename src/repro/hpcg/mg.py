"""Geometric multigrid preconditioner for the 27-point stencil (HPCG-style).

One V-cycle per apply, matching the HPCG reference structure:

* **hierarchy**: each level halves every grid dimension (while all of them
  stay even and at least 4) and *re-discretises* the 27-point operator on
  the coarse grid -- the Galerkin product degenerates under injection for
  a distance-1 stencil, so re-discretisation is the right coarse operator
  here, exactly as in HPCG;
* **smoother**: one symmetric Gauss--Seidel sweep.  SymGS with initial
  guess ``x`` is algebraically ``x + M^{-1}(b - A x)`` where ``M`` is the
  SSOR splitting at ``omega = 1`` -- so the smoother *is* the existing
  :class:`~repro.core.preconditioners.SSORPreconditioner` triangular-solve
  machinery, reused per level;
* **transfer**: injection restriction (coarse point ``(i,j,k)`` reads fine
  point ``(2i,2j,2k)``) and its transpose as prolongation, the HPCG pair;
* **coarsest level**: a single SymGS sweep.

The apply is deterministic (triangular solves + CSR mat-vecs in fixed
order), which is what lets the distributed HPCG program replicate it on
every rank and stay bitwise invariant to the rank count.  As a
:class:`~repro.core.preconditioners.Preconditioner` with
``parallel = False`` it also plugs directly into
:func:`repro.core.pcg.hpf_pcg`, which charges ``flops_per_apply`` as
serialised work -- the same cost treatment SSOR gets.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.preconditioners import Preconditioner, SSORPreconditioner
from ..sparse.generators import stencil27

__all__ = ["MultigridPreconditioner"]


class _Level:
    """One grid level: operator, SymGS smoother, injection map to coarse."""

    __slots__ = ("matrix", "shape", "smoother", "inject")

    def __init__(self, matrix, shape: Tuple[int, int, int]):
        self.matrix = matrix
        self.shape = shape
        self.smoother = SSORPreconditioner(matrix, omega=1.0)
        self.inject: Optional[np.ndarray] = None  # fine ids of coarse points


def _injection_ids(fine: Tuple[int, int, int],
                   coarse: Tuple[int, int, int]) -> np.ndarray:
    """Fine-grid global ids of the coarse points (coarse row-major order)."""
    nx, ny, _ = fine
    cnx, cny, cnz = coarse
    cz, cy, cx = np.meshgrid(
        np.arange(cnz), np.arange(cny), np.arange(cnx), indexing="ij"
    )
    return (((2 * cz) * ny + 2 * cy) * nx + 2 * cx).ravel()


class MultigridPreconditioner(Preconditioner):
    """HPCG-style geometric V(1,1)-cycle for :func:`stencil27` systems.

    Parameters
    ----------
    matrix:
        The fine-grid operator.  Must have ``nx * ny * nz`` rows; the
        hierarchy below it is re-discretised with :func:`stencil27`.
    shape:
        Fine grid dimensions ``(nx, ny, nz)``.
    max_levels:
        Hierarchy depth cap (HPCG uses 4).  Coarsening also stops when any
        dimension is odd or would drop below 2.
    """

    parallel = False

    def __init__(self, matrix, shape: Tuple[int, int, int],
                 max_levels: int = 4):
        nx, ny, nz = (int(s) for s in shape)
        if max_levels < 1:
            raise ValueError("max_levels must be >= 1")
        nrows = getattr(matrix, "nrows", None)
        if nrows is not None and nrows != nx * ny * nz:
            raise ValueError(
                f"matrix has {nrows} rows, shape {shape} implies "
                f"{nx * ny * nz}"
            )
        self.shape = (nx, ny, nz)
        self.levels: List[_Level] = [_Level(matrix, self.shape)]
        while len(self.levels) < max_levels:
            fx, fy, fz = self.levels[-1].shape
            if fx % 2 or fy % 2 or fz % 2 or min(fx, fy, fz) < 4:
                break
            cshape = (fx // 2, fy // 2, fz // 2)
            self.levels[-1].inject = _injection_ids(
                self.levels[-1].shape, cshape
            )
            self.levels.append(_Level(stencil27(*cshape), cshape))
        self._flops = self._count_flops()

    @property
    def depth(self) -> int:
        return len(self.levels)

    def _count_flops(self) -> float:
        total = 0.0
        for i, level in enumerate(self.levels):
            n = level.matrix.nrows
            smooth = level.smoother.flops_per_apply  # 2*nnz + n
            residual = 2.0 * level.matrix.nnz + n
            if i == len(self.levels) - 1:
                total += smooth  # coarsest: one SymGS from zero
            else:
                # pre-smooth, two residuals, post-smooth, correction adds
                total += 2.0 * smooth + 2.0 * residual + 2.0 * n
                total += float(level.inject.size)
        return total

    # ------------------------------------------------------------------ #
    def _vcycle(self, lvl: int, r: np.ndarray) -> np.ndarray:
        level = self.levels[lvl]
        if lvl == len(self.levels) - 1:
            return level.smoother.solve(r)  # SymGS sweep from zero guess
        x = level.smoother.solve(r)  # pre-smooth (zero initial guess)
        res = r - level.matrix.matvec(x)
        xc = self._vcycle(lvl + 1, res[level.inject])  # injection restrict
        x[level.inject] += xc  # transpose-injection prolong
        res = r - level.matrix.matvec(x)
        x += level.smoother.solve(res)  # post-smooth
        return x

    def solve(self, r: np.ndarray) -> np.ndarray:
        return self._vcycle(0, np.asarray(r, dtype=np.float64))

    @property
    def flops_per_apply(self) -> float:
        return self._flops

    @property
    def name(self) -> str:
        return "mg"
