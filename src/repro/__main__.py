"""``python -m repro`` entry point."""

import sys

from .cli import main

try:
    sys.exit(main())
except BrokenPipeError:  # e.g. `python -m repro ... | head`
    sys.stderr.close()
    sys.exit(0)
